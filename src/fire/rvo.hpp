// Reference Vector Optimisation (RVO) — the dominant module in the paper's
// Table 1: "a fully automatic least-squares fit of delay and duration is
// performed for each voxel during the measurement.  The procedure rasters
// the parameter space to find the global minimum."
//
// For every voxel, the best-correlating reference among a raster of
// (delay, dispersion) HRF parameters is found.  The planned optimisation
// the paper mentions ("the resolution of the grid can be reduced and the
// solution refined using a conjugate gradient method") is implemented as
// RvoMode::kCoarseRefine, benchmarked in the A1 ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "fire/reference.hpp"
#include "fire/volume.hpp"

namespace gtw::fire {

enum class RvoMode {
  kFullRaster,     // paper's implementation: dense grid search
  kCoarseRefine,   // coarse grid + local iterative refinement (extension)
};

struct RvoConfig {
  // Raster over delay x dispersion.
  double delay_min_s = 3.0, delay_max_s = 9.0;
  double disp_min_s = 0.5, disp_max_s = 3.5;
  int delay_steps = 10;
  int disp_steps = 10;
  RvoMode mode = RvoMode::kFullRaster;
  int coarse_factor = 3;    // coarse grid is steps/factor in each dimension
  int refine_iterations = 6;
  // Voxels below this fraction of the mean intensity are skipped (air).
  double min_intensity_fraction = 0.1;
};

struct RvoVoxelFit {
  float best_correlation = 0.0f;
  float delay_s = 0.0f;
  float dispersion_s = 0.0f;
};

struct RvoResult {
  std::vector<RvoVoxelFit> fits;  // per voxel
  VolumeF correlation_map;
  VolumeF delay_map;
  std::uint64_t reference_evaluations = 0;  // grid points x voxels touched
};

class RvoAnalyzer {
 public:
  RvoAnalyzer(Dims dims, StimulusDesign stim, double tr_s, RvoConfig cfg = {});

  // Run the fit over the voxel time series accumulated so far.  `series`
  // holds one volume per scan (all with the analyzer's dims).
  RvoResult analyze(const std::vector<VolumeF>& series) const;

  const RvoConfig& config() const { return cfg_; }

  // Number of (delay, dispersion) candidates evaluated per voxel in full
  // raster mode.
  int grid_points() const { return cfg_.delay_steps * cfg_.disp_steps; }

 private:
  struct Candidate {
    double delay, dispersion;
    std::vector<double> reference;  // z-normalised, length = max scans seen
  };

  // Correlation of one voxel's series with a z-normalised reference.
  static double correlate(const std::vector<double>& voxel_series,
                          const std::vector<double>& ref);
  std::vector<double> reference_for(double delay, double dispersion,
                                    int n_scans) const;

  Dims dims_;
  StimulusDesign stim_;
  double tr_s_;
  RvoConfig cfg_;
};

// Work accounting for the execution model: ops per voxel = grid points x
// scans x ~6 (multiply-add on the running sums).
constexpr double kRvoOpsPerSample = 6.0;

}  // namespace gtw::fire
