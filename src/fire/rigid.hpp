// Rigid-body (6-parameter) transforms on volumes: used by the scanner model
// to inject subject head motion and by the FIRE motion-correction module to
// undo it ("even small head movements tend to produce artefacts ... an
// iterative linear scheme is used", paper section 4).
#pragma once

#include <array>

#include "fire/volume.hpp"

namespace gtw::fire {

// Parameters: translations in voxels, rotations in radians about the volume
// centre (x, y, z axes applied in that order).
struct RigidTransform {
  double tx = 0, ty = 0, tz = 0;
  double rx = 0, ry = 0, rz = 0;

  std::array<double, 6> as_array() const { return {tx, ty, tz, rx, ry, rz}; }
  static RigidTransform from_array(const std::array<double, 6>& a) {
    return {a[0], a[1], a[2], a[3], a[4], a[5]};
  }

  RigidTransform inverse_approx() const {
    // For the small motions of a restrained head, negating the parameters
    // inverts the transform to first order.
    return {-tx, -ty, -tz, -rx, -ry, -rz};
  }

  // Map a point (voxel coordinates, origin at the volume centre is handled
  // by the caller) through rotation then translation.
  void apply(double cx, double cy, double cz, double x, double y, double z,
             double& ox, double& oy, double& oz) const;

  double max_abs() const;
};

// Resample `src` through the transform: output voxel v reads
// src.sample(T(v)).  Border voxels clamp.
VolumeF resample(const VolumeF& src, const RigidTransform& t);

}  // namespace gtw::fire
