#include "fire/rvo.hpp"

#include <algorithm>
#include <cmath>

namespace gtw::fire {

RvoAnalyzer::RvoAnalyzer(Dims dims, StimulusDesign stim, double tr_s,
                         RvoConfig cfg)
    : dims_(dims), stim_(stim), tr_s_(tr_s), cfg_(cfg) {}

std::vector<double> RvoAnalyzer::reference_for(double delay, double dispersion,
                                               int n_scans) const {
  return make_reference(stim_, n_scans, tr_s_,
                        HrfParams{delay, dispersion});
}

double RvoAnalyzer::correlate(const std::vector<double>& x,
                              const std::vector<double>& ref) {
  // ref is z-normalised: corr = (1/n) sum (x - mx)/sx * ref.
  const std::size_t n = x.size();
  double mx = 0.0;
  for (double v : x) mx += v;
  mx /= static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - mx;
    sxx += d * d;
    sxy += d * ref[i];
  }
  if (sxx <= 1e-12) return 0.0;
  return sxy / std::sqrt(sxx * static_cast<double>(n));
}

RvoResult RvoAnalyzer::analyze(const std::vector<VolumeF>& series) const {
  RvoResult out;
  out.correlation_map = VolumeF(dims_);
  out.delay_map = VolumeF(dims_);
  const std::size_t voxels = dims_.voxels();
  out.fits.resize(voxels);
  if (series.empty()) return out;
  const int n_scans = static_cast<int>(series.size());

  // Mean intensity threshold to skip air voxels (same masking FIRE uses).
  double grand_mean = 0.0;
  for (std::size_t i = 0; i < voxels; ++i)
    grand_mean += series.back()[i];
  grand_mean /= static_cast<double>(voxels);
  const double mask = grand_mean * cfg_.min_intensity_fraction;

  // Precompute candidate references.
  auto build_grid = [&](int dsteps, int wsteps) {
    std::vector<Candidate> grid;
    grid.reserve(static_cast<std::size_t>(dsteps) * wsteps);
    for (int a = 0; a < dsteps; ++a) {
      const double delay =
          cfg_.delay_min_s + (cfg_.delay_max_s - cfg_.delay_min_s) *
                                 (dsteps > 1 ? static_cast<double>(a) / (dsteps - 1) : 0.5);
      for (int b = 0; b < wsteps; ++b) {
        const double disp =
            cfg_.disp_min_s + (cfg_.disp_max_s - cfg_.disp_min_s) *
                                  (wsteps > 1 ? static_cast<double>(b) / (wsteps - 1) : 0.5);
        grid.push_back(Candidate{delay, disp,
                                 reference_for(delay, disp, n_scans)});
      }
    }
    return grid;
  };

  const bool coarse = cfg_.mode == RvoMode::kCoarseRefine;
  const int dsteps = coarse
      ? std::max(2, cfg_.delay_steps / cfg_.coarse_factor)
      : cfg_.delay_steps;
  const int wsteps = coarse
      ? std::max(2, cfg_.disp_steps / cfg_.coarse_factor)
      : cfg_.disp_steps;
  const std::vector<Candidate> grid = build_grid(dsteps, wsteps);

  const double d_range = cfg_.delay_max_s - cfg_.delay_min_s;
  const double w_range = cfg_.disp_max_s - cfg_.disp_min_s;
  const double d_step0 = d_range / std::max(1, dsteps - 1);
  const double w_step0 = w_range / std::max(1, wsteps - 1);

  std::vector<double> voxel_series(static_cast<std::size_t>(n_scans));
  for (std::size_t v = 0; v < voxels; ++v) {
    if (series.back()[v] < mask) continue;
    for (int t = 0; t < n_scans; ++t)
      voxel_series[static_cast<std::size_t>(t)] =
          series[static_cast<std::size_t>(t)][v];

    RvoVoxelFit best;
    best.best_correlation = -2.0f;
    for (const Candidate& c : grid) {
      const double r = correlate(voxel_series, c.reference);
      ++out.reference_evaluations;
      if (r > best.best_correlation) {
        best.best_correlation = static_cast<float>(r);
        best.delay_s = static_cast<float>(c.delay);
        best.dispersion_s = static_cast<float>(c.dispersion);
      }
    }

    if (coarse) {
      // Local pattern-search refinement around the coarse winner, shrinking
      // the step each iteration (the paper's planned grid-reduce + iterative
      // refine optimisation).
      double step_d = d_step0 / 2.0, step_w = w_step0 / 2.0;
      for (int it = 0; it < cfg_.refine_iterations; ++it) {
        bool improved = false;
        for (const auto& [dd, dw] :
             {std::pair{step_d, 0.0}, std::pair{-step_d, 0.0},
              std::pair{0.0, step_w}, std::pair{0.0, -step_w}}) {
          const double nd = std::clamp(best.delay_s + dd, cfg_.delay_min_s,
                                       cfg_.delay_max_s);
          const double nw = std::clamp(best.dispersion_s + dw,
                                       cfg_.disp_min_s, cfg_.disp_max_s);
          const std::vector<double> ref = reference_for(nd, nw, n_scans);
          const double r = correlate(voxel_series, ref);
          ++out.reference_evaluations;
          if (r > best.best_correlation) {
            best.best_correlation = static_cast<float>(r);
            best.delay_s = static_cast<float>(nd);
            best.dispersion_s = static_cast<float>(nw);
            improved = true;
          }
        }
        if (!improved) {
          step_d /= 2.0;
          step_w /= 2.0;
        }
      }
    }

    out.fits[v] = best;
    out.correlation_map[v] = best.best_correlation;
    out.delay_map[v] = best.delay_s;
  }
  return out;
}

}  // namespace gtw::fire
