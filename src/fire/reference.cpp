#include "fire/reference.hpp"

#include <cmath>

namespace gtw::fire {

std::vector<double> StimulusDesign::series(int n_scans) const {
  std::vector<double> out(static_cast<std::size_t>(n_scans));
  for (int i = 0; i < n_scans; ++i)
    out[static_cast<std::size_t>(i)] = value(i);
  return out;
}

std::vector<double> hrf_kernel(const HrfParams& p, double dt,
                               double duration_s) {
  // Gamma density with mean = delay and sd = dispersion:
  //   shape k = (d/w)^2,  scale theta = w^2 / d.
  const double d = std::max(p.delay_s, 0.1);
  const double w = std::max(p.dispersion_s, 0.1);
  const double k = (d / w) * (d / w);
  const double theta = (w * w) / d;

  const int n = std::max(1, static_cast<int>(duration_s / dt));
  std::vector<double> h(static_cast<std::size_t>(n));
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = (i + 0.5) * dt;
    // Unnormalised gamma density; lgamma keeps large shapes stable.
    const double log_pdf = (k - 1.0) * std::log(t) - t / theta -
                           std::lgamma(k) - k * std::log(theta);
    h[static_cast<std::size_t>(i)] = std::exp(log_pdf);
    sum += h[static_cast<std::size_t>(i)];
  }
  if (sum > 0.0)
    for (double& x : h) x /= sum;
  return h;
}

std::vector<double> make_reference(const StimulusDesign& stim, int n_scans,
                                   double tr_s, const HrfParams& p) {
  const std::vector<double> s = stim.series(n_scans);
  const std::vector<double> h = hrf_kernel(p, tr_s);
  std::vector<double> r(static_cast<std::size_t>(n_scans), 0.0);
  for (int i = 0; i < n_scans; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < h.size() && static_cast<int>(j) <= i; ++j)
      acc += s[static_cast<std::size_t>(i) - j] * h[j];
    r[static_cast<std::size_t>(i)] = acc;
  }
  z_normalise(r);
  return r;
}

void z_normalise(std::vector<double>& v) {
  if (v.empty()) return;
  const double n = static_cast<double>(v.size());
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= n;
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= n;
  if (var < 1e-30) {
    for (double& x : v) x = 0.0;
    return;
  }
  const double inv_sd = 1.0 / std::sqrt(var);
  for (double& x : v) x = (x - mean) * inv_sd;
}

}  // namespace gtw::fire
