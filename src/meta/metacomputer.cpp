#include "meta/metacomputer.hpp"

#include <stdexcept>

namespace gtw::meta {

int Metacomputer::add_machine(MachineSpec spec) {
  machines_.push_back(std::move(spec));
  pe_cursor_.push_back(0);
  return static_cast<int>(machines_.size()) - 1;
}

int Metacomputer::allocate_pes(int machine, int n) {
  int& cursor = pe_cursor_.at(static_cast<std::size_t>(machine));
  const MachineSpec& spec = machines_.at(static_cast<std::size_t>(machine));
  if (cursor + n > spec.max_pes)
    throw std::runtime_error("allocate_pes: machine " + spec.name +
                             " exhausted");
  const int base = cursor;
  cursor += n;
  return base;
}

void Metacomputer::link_machines(int ma, int mb, net::TcpConfig cfg,
                                 std::uint16_t port_base) {
  // Historical single-connection entry point: a pass-through PathTransport
  // reproduces the old direct-connection event sequence exactly.
  PathConfig pc;
  pc.tcp = cfg;
  link_machines(ma, mb, pc, port_base);
}

void Metacomputer::link_machines(int ma, int mb, PathConfig cfg,
                                 std::uint16_t port_base) {
  if (ma == mb) throw std::invalid_argument("link_machines: same machine");
  const auto key = std::minmax(ma, mb);
  MachineSpec& lo = machines_.at(static_cast<std::size_t>(key.first));
  MachineSpec& hi = machines_.at(static_cast<std::size_t>(key.second));
  if (lo.frontend == nullptr || hi.frontend == nullptr)
    throw std::runtime_error("link_machines: machine has no front-end host");
  WanLink link;
  link.path = std::make_unique<PathTransport>(sched_, *lo.frontend,
                                              *hi.frontend, port_base, cfg);
  link.side_of_lo = 0;
  wan_[{key.first, key.second}] = std::move(link);
}

PathTransport* Metacomputer::wan_path(int ma, int mb) {
  const auto key = std::minmax(ma, mb);
  auto it = wan_.find({key.first, key.second});
  return it == wan_.end() ? nullptr : it->second.path.get();
}

bool Metacomputer::linked(int ma, int mb) const {
  const auto key = std::minmax(ma, mb);
  return wan_.contains({key.first, key.second});
}

void Metacomputer::wan_send(int from_machine, int to_machine,
                            units::Bytes amount,
                            std::function<void()> on_delivered) {
  const auto key = std::minmax(from_machine, to_machine);
  auto it = wan_.find({key.first, key.second});
  if (it == wan_.end())
    throw std::runtime_error("wan_send: machines not linked");
  const int side = from_machine == key.first ? it->second.side_of_lo
                                             : 1 - it->second.side_of_lo;
  ++wan_messages_;
  wan_bytes_ += amount.count() + kMetaHeaderBytes;
  it->second.path->send(side, amount + units::Bytes{kMetaHeaderBytes},
                        std::move(on_delivered));
}

des::SimTime Metacomputer::intra_cost(int machine_id,
                                      units::Bytes amount) const {
  const MachineSpec& m = machines_.at(static_cast<std::size_t>(machine_id));
  return m.intra_latency +
         units::transmission_time(amount, m.intra_bandwidth);
}

}  // namespace gtw::meta
