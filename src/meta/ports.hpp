// MPI-2 name-based connection establishment (MPI_Open_port /
// MPI_Comm_accept / MPI_Comm_connect).  The paper singles this feature out:
// "dynamic process creation and attachment e.g. can be used for
// realtime-visualization or computational steering".  FIRE uses it to let
// the RT-client attach to the compute service on the T3E and to the
// rendering service on the Onyx 2.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "meta/communicator.hpp"

namespace gtw::meta {

// Result of connect/accept: a merged communicator in which the accepting
// side's ranks come first.  `local_offset/local_size` describe the caller's
// own group within it.
struct Intercomm {
  std::shared_ptr<Communicator> comm;
  int local_offset = 0;
  int local_size = 0;
  int remote_offset = 0;
  int remote_size = 0;
};

class PortRegistry {
 public:
  explicit PortRegistry(Metacomputer& mc) : mc_(&mc) {}

  using ConnectCallback = std::function<void(Intercomm)>;

  // Server side: publish `name` and wait for a connector.
  void accept(const std::string& name, std::shared_ptr<Communicator> local,
              ConnectCallback cb);
  // Client side: rendezvous with the acceptor of `name`.
  void connect(const std::string& name, std::shared_ptr<Communicator> local,
               ConnectCallback cb);

  bool has_pending_accept(const std::string& name) const {
    return accepts_.contains(name);
  }

 private:
  struct Pending {
    std::shared_ptr<Communicator> comm;
    ConnectCallback cb;
  };

  void rendezvous(const std::string& name, Pending acceptor,
                  Pending connector);

  Metacomputer* mc_;
  std::map<std::string, Pending> accepts_;
  std::map<std::string, Pending> connects_;
};

}  // namespace gtw::meta
