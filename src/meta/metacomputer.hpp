// Metacomputing substrate: the registry of parallel machines that together
// form the metacomputer, and the WAN transport between them.
//
// The paper's testbed ran a "metacomputing-aware" MPI (MetaMPI by Pallas):
// communication *inside* a machine uses the machine's own interconnect;
// communication *between* machines is tunnelled over TCP across the ATM
// testbed by router processes on the front-end hosts.  This module models
// exactly that split: intra-machine traffic is charged a latency+bandwidth
// cost from the machine profile, inter-machine traffic travels over real
// (simulated) TCP connections between the machines' front-end Hosts.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "des/scheduler.hpp"
#include "meta/path_transport.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "units/units.hpp"

namespace gtw::meta {

// Static description of one parallel computer in the metacomputer.
struct MachineSpec {
  std::string name;
  int max_pes = 1;
  // Interconnect model (e.g. T3E torus: ~1 us latency, ~350 MB/s per link).
  des::SimTime intra_latency = des::SimTime::microseconds(1);
  units::BitRate intra_bandwidth = units::ByteRate::per_sec(350e6).to_bit_rate();
  // Front-end host attached to the simulated testbed; nullptr for a machine
  // used standalone (all communication intra-machine).
  net::Host* frontend = nullptr;
  // Dynamic process creation overhead (MPI-2 spawn).
  des::SimTime spawn_base = des::SimTime::milliseconds(100);
  des::SimTime spawn_per_pe = des::SimTime::milliseconds(5);
};

// Byte overhead of the meta library's message envelope on the WAN.
constexpr std::uint32_t kMetaHeaderBytes = 64;

class Metacomputer {
 public:
  explicit Metacomputer(des::Scheduler& sched) : sched_(sched) {}

  int add_machine(MachineSpec spec);
  const MachineSpec& machine(int id) const { return machines_.at(static_cast<std::size_t>(id)); }
  int machine_count() const { return static_cast<int>(machines_.size()); }

  // Reserve `n` processing elements on `machine` (MPI-2 spawn support);
  // returns the first PE index.  Throws if the machine is exhausted.
  int allocate_pes(int machine, int n);
  int pes_in_use(int machine) const {
    return pe_cursor_.at(static_cast<std::size_t>(machine));
  }

  // Create the WAN router path between two machines' front-ends.  Both must
  // have front-end hosts routed to each other on the testbed.  The TcpConfig
  // overload keeps the historical single-connection behaviour (a pass-through
  // PathTransport); the PathConfig overload opens a full multi-stream path.
  void link_machines(int ma, int mb, net::TcpConfig cfg,
                     std::uint16_t port_base);
  void link_machines(int ma, int mb, PathConfig cfg, std::uint16_t port_base);

  // The transport carrying WAN traffic between two linked machines (for
  // instrumentation and benchmarks); nullptr if the pair was never linked.
  PathTransport* wan_path(int ma, int mb);

  // Send `amount` of application data between machines over the router
  // connection; `on_delivered` fires at the receiving front-end's time.
  // Falls back to an error if the machines were never linked.
  void wan_send(int from_machine, int to_machine, units::Bytes amount,
                std::function<void()> on_delivered);

  bool linked(int ma, int mb) const;
  des::Scheduler& scheduler() { return sched_; }

  // Time for an intra-machine message of `amount` between two PEs.
  des::SimTime intra_cost(int machine_id, units::Bytes amount) const;

  std::uint64_t wan_messages() const { return wan_messages_; }
  std::uint64_t wan_bytes() const { return wan_bytes_; }

 private:
  struct WanLink {
    std::unique_ptr<PathTransport> path;
    int side_of_lo = 0;  // path side owned by the lower machine id
  };

  des::Scheduler& sched_;
  std::vector<MachineSpec> machines_;
  std::vector<int> pe_cursor_;
  std::map<std::pair<int, int>, WanLink> wan_;
  std::uint64_t wan_messages_ = 0;
  std::uint64_t wan_bytes_ = 0;
};

}  // namespace gtw::meta
