#include "meta/communicator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

namespace gtw::meta {

std::uint32_t datatype_size(Datatype t) {
  switch (t) {
    case Datatype::kByte: return 1;
    case Datatype::kInt32: return 4;
    case Datatype::kInt64: return 8;
    case Datatype::kFloat32: return 4;
    case Datatype::kFloat64: return 8;
  }
  return 1;
}

Communicator::Communicator(Metacomputer& mc, std::vector<ProcLoc> ranks)
    : mc_(&mc), ranks_(std::move(ranks)), states_(ranks_.size()) {
  if (ranks_.empty())
    throw std::invalid_argument("Communicator: empty rank set");
}

bool Communicator::matches(const PostedRecv& r, const Message& m) const {
  return (r.source == kAnySource || r.source == m.source) &&
         (r.tag == kAnyTag || r.tag == m.tag);
}

void Communicator::send(int src_rank, int dst_rank, int tag,
                        std::uint64_t bytes, std::any data, Callback on_sent) {
  const ProcLoc& src = location(src_rank);
  const ProcLoc& dst = location(dst_rank);
  ++messages_sent_;
  bytes_sent_ += bytes;
  PeerStats& peer = peer_traffic_[{src_rank, dst_rank}];
  ++peer.messages;
  peer.bytes += bytes;
  tracer_.send(static_cast<std::uint32_t>(src_rank),
               static_cast<std::uint32_t>(dst_rank),
               static_cast<std::uint32_t>(tag), units::Bytes{bytes},
               mc_->scheduler().now());

  Message msg{src_rank, tag, bytes, std::move(data)};
  if (src.machine == dst.machine) {
    const des::SimTime cost = mc_->intra_cost(src.machine, units::Bytes{bytes});
    mc_->scheduler().schedule_after(
        cost, [this, dst_rank, msg = std::move(msg)]() mutable {
          deliver(dst_rank, std::move(msg));
        });
  } else if (retry_enabled_) {
    auto st = std::make_shared<WanSendState>();
    st->src_rank = src_rank;
    st->dst_rank = dst_rank;
    st->src_machine = src.machine;
    st->dst_machine = dst.machine;
    st->bytes = bytes;
    st->msg = std::move(msg);
    st->next_timeout = retry_.timeout;
    // The library may retransmit this message, so the application buffer
    // stays pinned: on_sent is deferred to the first successful delivery
    // (and never fires if the message is reported unreachable).
    st->on_sent = std::move(on_sent);
    if (des::SpanHook* h = mc_->scheduler().span_hook(); h != nullptr) {
      st->ctx = h->current();
      if (!st->ctx.valid()) {
        st->ctx = h->mint("comm.wan", mc_->scheduler().now());
        st->owns_trace = true;
      }
    }
    wan_attempt(std::move(st));
    return;
  } else {
    des::SpanHook* h = mc_->scheduler().span_hook();
    des::TraceContext ctx;
    bool minted = false;
    if (h != nullptr) {
      ctx = h->current();
      if (!ctx.valid()) {
        ctx = h->mint("comm.wan", mc_->scheduler().now());
        minted = true;
      }
    }
    des::TraceContext prev;
    if (h != nullptr) prev = h->adopt(ctx);
    mc_->wan_send(src.machine, dst.machine, units::Bytes{bytes},
                  [this, dst_rank, ctx, minted,
                   msg = std::move(msg)]() mutable {
                    deliver(dst_rank, std::move(msg));
                    if (des::SpanHook* h2 = mc_->scheduler().span_hook();
                        h2 != nullptr && minted)
                      h2->close_trace(ctx, mc_->scheduler().now());
                  });
    if (h != nullptr) h->adopt(prev);
  }
  if (on_sent) on_sent();
}

void Communicator::wan_attempt(std::shared_ptr<WanSendState> st) {
  ++st->attempts;
  // Run the attempt under the message's trace: the transport spans of this
  // attempt — and the watchdog armed below — nest under st->ctx (or under
  // the retry-backoff span once one is open, so resent copies read as
  // children of the stall that caused them).
  des::SpanHook* h = mc_->scheduler().span_hook();
  des::TraceContext prev;
  if (h != nullptr) prev = h->adopt(des::under(st->ctx, st->retry_span));
  mc_->wan_send(st->src_machine, st->dst_machine, units::Bytes{st->bytes},
                [this, st]() {
    GTW_CHECK_HOOK(if (check_observer_ != nullptr)
                       check_observer_->on_wan_outcome(
                           st->src_rank, st->dst_rank,
                           !st->abandoned && !st->delivered, st->abandoned,
                           st->delivered));
    if (st->abandoned) {
      // The unreachable report already fired; the application has been told
      // this message failed, so a tardy copy must not resurrect it.
      ++reliability_.dropped_after_unreachable;
      return;
    }
    if (st->delivered) {
      // An earlier attempt's bytes finally made it through after a retry
      // was already issued (the simulated TCP is reliable, just late).
      ++reliability_.duplicates_suppressed;
      return;
    }
    st->delivered = true;
    st->watchdog.cancel();
    if (des::SpanHook* h2 = mc_->scheduler().span_hook(); h2 != nullptr) {
      h2->end_span(st->retry_span, mc_->scheduler().now());
      st->retry_span = 0;
    }
    if (st->on_sent) {
      Callback sent = std::move(st->on_sent);
      st->on_sent = nullptr;
      sent();
    }
    deliver(st->dst_rank, std::move(st->msg));
    if (des::SpanHook* h2 = mc_->scheduler().span_hook();
        h2 != nullptr && st->owns_trace)
      h2->close_trace(st->ctx, mc_->scheduler().now());
  });
  st->watchdog = mc_->scheduler().schedule_after(st->next_timeout, [this, st]() {
    if (st->delivered) return;
    if (st->attempts > retry_.max_retries) {
      st->abandoned = true;
      ++reliability_.unreachable_reports;
      GTW_CHECK_HOOK(if (check_observer_ != nullptr)
                         check_observer_->on_unreachable(st->src_rank,
                                                         st->dst_rank));
      if (des::SpanHook* h2 = mc_->scheduler().span_hook(); h2 != nullptr) {
        // The message is dead: retire the retry span and the whole trace
        // as aborted so the tracer's leak census stays clean even though
        // no delivery will ever close them.
        h2->abort_span(st->retry_span, mc_->scheduler().now());
        st->retry_span = 0;
        if (st->owns_trace)
          h2->abort_trace(st->ctx, "unreachable", mc_->scheduler().now());
      }
      if (unreachable_)
        unreachable_(st->src_rank, st->dst_rank, st->attempts);
      return;
    }
    ++reliability_.wan_retries;
    ++peer_traffic_[{st->src_rank, st->dst_rank}].retries;
    if (des::SpanHook* h2 = mc_->scheduler().span_hook();
        h2 != nullptr && st->retry_span == 0 && st->ctx.valid()) {
      st->retry_span =
          h2->begin_span(st->ctx, des::SpanPhase::kRetryBackoff, "comm",
                         "retry", mc_->scheduler().now());
    }
    st->next_timeout =
        des::SimTime::seconds(st->next_timeout.sec() * retry_.backoff);
    if (st->next_timeout > retry_.max_timeout)
      st->next_timeout = retry_.max_timeout;
    wan_attempt(st);
  });
  if (h != nullptr) h->adopt(prev);
}

void Communicator::send_typed(int src_rank, int dst_rank, int tag,
                              std::uint64_t count, Datatype type,
                              std::any data, Callback on_sent) {
  send(src_rank, dst_rank, tag, count * datatype_size(type), std::move(data),
       std::move(on_sent));
}

void Communicator::recv(int rank, int source, int tag, RecvCallback cb) {
  RankState& st = states_.at(static_cast<std::size_t>(rank));
  // Try the unexpected queue first (arrival order preserved).
  for (auto it = st.unexpected.begin(); it != st.unexpected.end(); ++it) {
    PostedRecv probe{source, tag, nullptr};
    if (matches(probe, *it)) {
      Message msg = std::move(*it);
      st.unexpected.erase(it);
      cb(msg);
      return;
    }
  }
  st.recvs.push_back(PostedRecv{source, tag, std::move(cb)});
}

void Communicator::deliver(int dst_rank, Message msg) {
  tracer_.recv(static_cast<std::uint32_t>(dst_rank),
               static_cast<std::uint32_t>(msg.source),
               static_cast<std::uint32_t>(msg.tag), units::Bytes{msg.bytes},
               mc_->scheduler().now());
  RankState& st = states_.at(static_cast<std::size_t>(dst_rank));
  for (auto it = st.recvs.begin(); it != st.recvs.end(); ++it) {
    if (matches(*it, msg)) {
      RecvCallback cb = std::move(it->cb);
      st.recvs.erase(it);
      cb(msg);
      return;
    }
  }
  st.unexpected.push_back(std::move(msg));
}

des::SimTime Communicator::intra_tree_cost(std::uint64_t bytes) const {
  // Tree depth on the machine holding the most ranks of this communicator.
  std::map<int, int> counts;
  for (const ProcLoc& p : ranks_) ++counts[p.machine];
  des::SimTime worst = des::SimTime::zero();
  for (const auto& [machine, count] : counts) {
    const int depth = count > 1
        ? static_cast<int>(std::ceil(std::log2(static_cast<double>(count))))
        : 0;
    const des::SimTime cost =
        mc_->intra_cost(machine, units::Bytes{bytes}) * depth;
    worst = std::max(worst, cost);
  }
  return worst;
}

std::vector<int> Communicator::machines_involved() const {
  std::vector<int> out;
  for (const ProcLoc& p : ranks_)
    if (std::find(out.begin(), out.end(), p.machine) == out.end())
      out.push_back(p.machine);
  return out;
}

void Communicator::finish_collective(std::uint64_t key, const char* name,
                                     std::uint64_t wan_bytes,
                                     std::function<void(int rank)> per_rank) {
  const des::SimTime intra = intra_tree_cost(wan_bytes);
  const std::vector<int> machines = machines_involved();
  const int root_machine = location(collectives_[key].root).machine;
  auto& sched = mc_->scheduler();

  auto final_stage = [this, key, name, intra, per_rank, &sched]() {
    sched.schedule_after(intra, [this, key, name, per_rank]() {
      const std::uint32_t state = tracer_.state(name);
      for (int r = 0; r < size(); ++r) {
        tracer_.leave(static_cast<std::uint32_t>(r), state,
                      mc_->scheduler().now());
        per_rank(r);
      }
      collectives_.erase(key);
    });
  };

  if (machines.size() <= 1) {
    // Single machine: up the tree and back down.
    sched.schedule_after(intra, final_stage);
    return;
  }

  // Intra gather, then WAN exchange with the root machine's leader, then
  // intra broadcast.  The shared_ptr counters survive until all WAN legs
  // complete.
  auto pending_in = std::make_shared<int>(0);
  auto pending_out = std::make_shared<int>(0);
  sched.schedule_after(intra, [this, machines, root_machine, wan_bytes,
                               pending_in, pending_out, final_stage]() {
    *pending_in = static_cast<int>(machines.size()) - 1;
    for (int m : machines) {
      if (m == root_machine) continue;
      mc_->wan_send(m, root_machine, units::Bytes{wan_bytes},
                    [this, machines, root_machine, wan_bytes, pending_in,
                     pending_out, final_stage]() {
        if (--*pending_in > 0) return;
        // All partial contributions at the root leader: send results back.
        *pending_out = static_cast<int>(machines.size()) - 1;
        for (int m2 : machines) {
          if (m2 == root_machine) continue;
          mc_->wan_send(root_machine, m2, units::Bytes{wan_bytes},
                        [pending_out, final_stage]() {
                          if (--*pending_out == 0) final_stage();
                        });
        }
      });
    }
  });
}

void Communicator::barrier(int rank, Callback cb) {
  tracer_.enter(static_cast<std::uint32_t>(rank), tracer_.state("barrier"),
                mc_->scheduler().now());
  const std::uint64_t key = (1ULL << 62) | barrier_seq_;
  Collective& c = collectives_[key];
  if (c.continuations.empty()) c.continuations.resize(ranks_.size());
  c.continuations.at(static_cast<std::size_t>(rank)) = std::move(cb);
  if (++c.arrived < size()) return;
  ++barrier_seq_;
  finish_collective(key, "barrier", 8, [this, key](int r) {
    auto& cont = collectives_[key].continuations.at(static_cast<std::size_t>(r));
    if (cont) cont();
  });
}

void Communicator::broadcast(int rank, int root, std::uint64_t bytes,
                             std::function<void(const std::any&)> cb,
                             std::any root_data) {
  tracer_.enter(static_cast<std::uint32_t>(rank), tracer_.state("broadcast"),
                mc_->scheduler().now());
  const std::uint64_t key = (2ULL << 62) | bcast_seq_;
  Collective& c = collectives_[key];
  if (c.continuations.empty()) c.continuations.resize(ranks_.size());
  c.root = root;
  c.bytes = bytes;
  if (rank == root) c.bcast_data = std::move(root_data);
  c.continuations.at(static_cast<std::size_t>(rank)) =
      [this, key, cb = std::move(cb)]() { cb(collectives_[key].bcast_data); };
  if (++c.arrived < size()) return;
  ++bcast_seq_;
  finish_collective(key, "broadcast", bytes, [this, key](int r) {
    auto& cont = collectives_[key].continuations.at(static_cast<std::size_t>(r));
    if (cont) cont();
  });
}

void Communicator::allreduce(int rank, const std::vector<double>& contribution,
                             ReduceOp op,
                             std::function<void(std::vector<double>)> cb) {
  tracer_.enter(static_cast<std::uint32_t>(rank), tracer_.state("allreduce"),
                mc_->scheduler().now());
  const std::uint64_t key = (3ULL << 62) | reduce_seq_;
  Collective& c = collectives_[key];
  if (c.continuations.empty()) {
    c.continuations.resize(ranks_.size());
    c.contribs.resize(ranks_.size());
  }
  c.contribs.at(static_cast<std::size_t>(rank)) = contribution;
  c.continuations.at(static_cast<std::size_t>(rank)) = nullptr;  // placeholder
  auto cbs = std::make_shared<
      std::function<void(std::vector<double>)>>(std::move(cb));
  c.continuations.at(static_cast<std::size_t>(rank)) = [this, key, cbs]() {
    // Reduction computed once all contributions are in; recompute per rank
    // is cheap for the small vectors used here.
    Collective& cc = collectives_[key];
    std::vector<double> acc = cc.contribs.at(0);
    for (std::size_t i = 1; i < cc.contribs.size(); ++i) {
      const auto& v = cc.contribs[i];
      for (std::size_t j = 0; j < acc.size() && j < v.size(); ++j) {
        switch (static_cast<ReduceOp>(cc.bytes)) {
          case ReduceOp::kSum: acc[j] += v[j]; break;
          case ReduceOp::kMax: acc[j] = std::max(acc[j], v[j]); break;
          case ReduceOp::kMin: acc[j] = std::min(acc[j], v[j]); break;
        }
      }
    }
    (*cbs)(std::move(acc));
  };
  c.bytes = static_cast<std::uint64_t>(op);  // stash the op
  if (++c.arrived < size()) return;
  ++reduce_seq_;
  const std::uint64_t payload = contribution.size() * sizeof(double);
  finish_collective(key, "allreduce", std::max<std::uint64_t>(payload, 8),
                    [this, key](int r) {
    auto& cont = collectives_[key].continuations.at(static_cast<std::size_t>(r));
    if (cont) cont();
  });
}

void Communicator::gather(int rank, std::uint64_t bytes, std::any data,
                          int root,
                          std::function<void(std::vector<std::any>)> root_cb) {
  tracer_.enter(static_cast<std::uint32_t>(rank), tracer_.state("gather"),
                mc_->scheduler().now());
  const std::uint64_t key = (4ULL << 62) | gather_seq_;
  Collective& c = collectives_[key];
  if (c.continuations.empty()) {
    c.continuations.resize(ranks_.size());
    c.gathered.resize(ranks_.size());
  }
  c.root = root;
  c.gathered.at(static_cast<std::size_t>(rank)) = std::move(data);
  if (rank == root) {
    c.continuations.at(static_cast<std::size_t>(rank)) =
        [this, key, cb = std::move(root_cb)]() {
          cb(collectives_[key].gathered);
        };
  }
  if (++c.arrived < size()) return;
  ++gather_seq_;
  finish_collective(key, "gather",
                    bytes * static_cast<std::uint64_t>(size()),
                    [this, key](int r) {
    auto& cont = collectives_[key].continuations.at(static_cast<std::size_t>(r));
    if (cont) cont();
  });
}

void Communicator::scatter(int rank, int root, std::uint64_t bytes_per_rank,
                           std::function<void(const std::any&)> cb,
                           std::vector<std::any> root_data) {
  tracer_.enter(static_cast<std::uint32_t>(rank), tracer_.state("scatter"),
                mc_->scheduler().now());
  const std::uint64_t key = (5ULL << 60) | scatter_seq_;
  Collective& c = collectives_[key];
  if (c.continuations.empty()) {
    c.continuations.resize(ranks_.size());
    c.gathered.resize(ranks_.size());
  }
  c.root = root;
  if (rank == root) c.gathered = std::move(root_data);
  c.continuations.at(static_cast<std::size_t>(rank)) =
      [this, key, rank, cb = std::move(cb)]() {
        Collective& cc = collectives_[key];
        cb(static_cast<std::size_t>(rank) < cc.gathered.size()
               ? cc.gathered[static_cast<std::size_t>(rank)]
               : std::any{});
      };
  if (++c.arrived < size()) return;
  ++scatter_seq_;
  finish_collective(key, "scatter",
                    bytes_per_rank * static_cast<std::uint64_t>(size()),
                    [this, key](int r) {
    auto& cont = collectives_[key].continuations.at(static_cast<std::size_t>(r));
    if (cont) cont();
  });
}

void Communicator::alltoall(int rank, std::uint64_t bytes_per_pair,
                            std::vector<std::any> contributions,
                            std::function<void(std::vector<std::any>)> cb) {
  tracer_.enter(static_cast<std::uint32_t>(rank), tracer_.state("alltoall"),
                mc_->scheduler().now());
  const std::uint64_t key = (6ULL << 60) | alltoall_seq_;
  Collective& c = collectives_[key];
  if (c.continuations.empty()) {
    c.continuations.resize(ranks_.size());
    c.matrix.resize(ranks_.size());
  }
  c.matrix.at(static_cast<std::size_t>(rank)) = std::move(contributions);
  c.continuations.at(static_cast<std::size_t>(rank)) =
      [this, key, rank, cb = std::move(cb)]() {
        // Column `rank` of the contribution matrix.
        Collective& cc = collectives_[key];
        std::vector<std::any> column;
        column.reserve(cc.matrix.size());
        for (const auto& row : cc.matrix) {
          column.push_back(static_cast<std::size_t>(rank) < row.size()
                               ? row[static_cast<std::size_t>(rank)]
                               : std::any{});
        }
        cb(std::move(column));
      };
  if (++c.arrived < size()) return;
  ++alltoall_seq_;
  finish_collective(
      key, "alltoall",
      bytes_per_pair * static_cast<std::uint64_t>(size()) *
          static_cast<std::uint64_t>(size()),
      [this, key](int r) {
        auto& cont =
            collectives_[key].continuations.at(static_cast<std::size_t>(r));
        if (cont) cont();
      });
}

void Communicator::sendrecv(int rank, int dst, int send_tag,
                            std::uint64_t send_bytes, std::any send_data,
                            int src, int recv_tag, RecvCallback cb) {
  recv(rank, src, recv_tag, std::move(cb));
  send(rank, dst, send_tag, send_bytes, std::move(send_data));
}

void Communicator::spawn(
    int machine, int n,
    std::function<void(std::shared_ptr<Communicator>)> cb) {
  const MachineSpec& spec = mc_->machine(machine);
  const des::SimTime startup = spec.spawn_base + spec.spawn_per_pe * n;
  mc_->scheduler().schedule_after(
      startup, [this, machine, n, cb = std::move(cb)]() {
        std::vector<ProcLoc> merged = ranks_;
        const int base = mc_->allocate_pes(machine, n);
        for (int i = 0; i < n; ++i)
          merged.push_back(ProcLoc{machine, base + i});
        cb(std::make_shared<Communicator>(*mc_, std::move(merged)));
      });
}

}  // namespace gtw::meta
