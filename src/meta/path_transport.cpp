#include "meta/path_transport.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gtw::meta {

PathTransport::PathTransport(des::Scheduler& sched, net::Host& a, net::Host& b,
                             std::uint16_t port_base, PathConfig cfg)
    : sched_(sched), host_a_(&a), host_b_(&b), cfg_(cfg),
      next_port_(port_base) {
  if (cfg_.streams < 1)
    throw std::invalid_argument("PathTransport: streams must be >= 1");
  if (cfg_.chunk_bytes.count() == 0)
    throw std::invalid_argument("PathTransport: chunk_bytes must be > 0");
  cfg_.min_streams = std::clamp(cfg_.min_streams, 1, cfg_.streams);
  active_streams_ = cfg_.streams;
  stream_window_ = std::max(cfg_.stream_window, cfg_.chunk_bytes);
  streams_.resize(static_cast<std::size_t>(cfg_.streams));
  for (Stream& s : streams_) open_stream(s);
}

PathTransport::~PathTransport() {
  des::SpanHook* h = sched_.span_hook();
  if (h == nullptr) return;
  // Messages still in flight at teardown retire their spans as aborted and
  // their traces as torn down; nothing may leak into the tracer's census.
  for (int side = 0; side < 2; ++side) {
    for (auto& [seq, msg] : messages_[side]) {
      for (Chunk& c : msg.chunks) h->abort_span(c.span, sched_.now());
      h->abort_span(msg.rx_span, sched_.now());
      h->abort_span(msg.span, sched_.now());
      if (msg.owns_trace) h->abort_trace(msg.ctx, "teardown", sched_.now());
    }
  }
}

void PathTransport::open_stream(Stream& s) {
  const std::uint16_t pa = next_port_;
  const std::uint16_t pb = static_cast<std::uint16_t>(next_port_ + 1);
  next_port_ = static_cast<std::uint16_t>(next_port_ + 2);
  s.conn = std::make_unique<net::TcpConnection>(*host_a_, *host_b_, pa, pb,
                                                cfg_.tcp);
  for (int side = 0; side < 2; ++side) {
    StreamSide& ss = s.side[side];
    ss.tokens = static_cast<double>(
        std::max(cfg_.pace_burst, cfg_.chunk_bytes).count());
    ss.last_refill = sched_.now();
  }
}

void PathTransport::send(int side, units::Bytes amount,
                         DeliveredCallback on_delivered) {
  assert(side == 0 || side == 1);
  Stats& st = stats_[side];
  ++st.messages;
  st.bytes += amount.count();

  // Causal trace for the logical message: inherit the running event's
  // context, or mint a fresh root when this send is a workload origin.
  des::SpanHook* h = sched_.span_hook();
  des::TraceContext ctx;
  bool minted = false;
  if (h != nullptr) {
    ctx = h->current();
    if (!ctx.valid()) {
      ctx = h->mint("meta.path", sched_.now());
      minted = true;
    }
  }

  if (cfg_.passthrough()) {
    // Single plain connection: hand the whole message straight to TCP so
    // the event sequence matches a bare TcpConnection exactly.
    ++st.chunks;
    streams_[0].stats[side].chunks += 1;
    streams_[0].stats[side].bytes += amount.count();
    std::uint64_t span = 0;
    des::TraceContext prev;
    if (h != nullptr && ctx.valid()) {
      span = h->begin_span(ctx, des::SpanPhase::kTransfer, "meta", "msg",
                           sched_.now());
      prev = h->adopt(des::under(ctx, span));
    }
    streams_[0].conn->send(
        side, amount, {},
        [this, side, amount, span, ctx, minted,
         cb = std::move(on_delivered)](const std::any&, des::SimTime) {
          Stats& sst = stats_[side];
          ++sst.delivered_messages;
          sst.delivered_bytes += amount.count();
          // Passthrough has no striping sequence; deliveries are TCP-ordered
          // by construction, so the delivery count doubles as the msg seq.
          GTW_CHECK_HOOK(if (check_observer_ != nullptr)
                             check_observer_->on_message(
                                 side, sst.delivered_messages - 1,
                                 amount.count()));
          if (des::SpanHook* h2 = sched_.span_hook(); h2 != nullptr) {
            h2->end_span(span, sched_.now());
            if (cb) cb();
            if (minted) h2->close_trace(ctx, sched_.now());
          } else {
            if (cb) cb();
          }
        });
    if (h != nullptr && ctx.valid()) h->adopt(prev);
    return;
  }

  const std::uint64_t seq = next_send_seq_[side]++;
  MessageState& msg = messages_[side][seq];
  msg.bytes = amount;
  msg.cb = std::move(on_delivered);
  msg.ctx = ctx;
  msg.owns_trace = minted;
  if (h != nullptr && ctx.valid())
    msg.span = h->begin_span(ctx, des::SpanPhase::kTransfer, "meta", "msg",
                             sched_.now());
  // Stripe into chunks; a message no larger than one chunk stays whole
  // (degenerate single-chunk stripe), and a zero-byte message still costs
  // one zero-length chunk so ordering and delivery semantics hold.
  std::uint64_t remaining = amount.count();
  do {
    const std::uint64_t take = std::min<std::uint64_t>(
        remaining, cfg_.chunk_bytes.count());
    msg.chunks.push_back(Chunk{units::Bytes{take}, false});
    remaining -= take;
  } while (remaining > 0);

  for (std::uint32_t i = 0; i < msg.chunks.size(); ++i) {
    if (h != nullptr && msg.ctx.valid())
      msg.chunks[i].span =
          h->begin_span(des::under(msg.ctx, msg.span),
                        des::SpanPhase::kQueueWait, "meta", "chunk",
                        sched_.now());
    const int target = rr_cursor_[side] % active_streams_;
    rr_cursor_[side] = (rr_cursor_[side] + 1) % active_streams_;
    streams_[static_cast<std::size_t>(target)].side[side].pending.push_back(
        ChunkRef{seq, i});
  }
  for (int i = 0; i < active_streams_; ++i) pump(i, side);
  arm_controller();
}

void PathTransport::refill_tokens(StreamSide& ss) {
  if (cfg_.pace_rate.bps() <= 0.0) return;
  const double burst = static_cast<double>(
      std::max(cfg_.pace_burst, cfg_.chunk_bytes).count());
  const double elapsed = (sched_.now() - ss.last_refill).sec();
  ss.last_refill = sched_.now();
  ss.tokens = std::min(burst,
                       ss.tokens + elapsed * cfg_.pace_rate.bps() / 8.0);
}

void PathTransport::pump(int stream, int side) {
  Stream& s = streams_[static_cast<std::size_t>(stream)];
  StreamSide& ss = s.side[side];
  refill_tokens(ss);
  while (!ss.pending.empty()) {
    const ChunkRef ref = ss.pending.front();
    const auto it = messages_[side].find(ref.msg_seq);
    if (it == messages_[side].end()) {  // message already fully delivered
      ss.pending.pop_front();
      continue;
    }
    const units::Bytes bytes = it->second.chunks[ref.idx].bytes;
    if (ss.inflight_bytes + bytes.count() > stream_window_.count() &&
        ss.inflight_bytes > 0)
      break;  // window full; next delivery re-pumps
    if (cfg_.pace_rate.bps() > 0.0 &&
        ss.tokens < static_cast<double>(bytes.count())) {
      // Token deficit: wake exactly when the bucket will cover this chunk.
      if (!ss.pace_timer.pending()) {
        ++stats_[side].paced_delays;
        const double deficit =
            static_cast<double>(bytes.count()) - ss.tokens;
        const des::SimTime wait =
            des::SimTime::seconds(deficit * 8.0 / cfg_.pace_rate.bps());
        ss.pace_timer = sched_.schedule_after(
            wait, [this, stream, side]() { pump(stream, side); });
      }
      break;
    }
    ss.pending.pop_front();
    if (cfg_.pace_rate.bps() > 0.0)
      ss.tokens -= static_cast<double>(bytes.count());
    dispatch(stream, side, ref);
  }
}

void PathTransport::dispatch(int stream, int side, ChunkRef ref) {
  Stream& s = streams_[static_cast<std::size_t>(stream)];
  StreamSide& ss = s.side[side];
  MessageState& msg = messages_[side][ref.msg_seq];
  Chunk& chunk = msg.chunks[ref.idx];
  const units::Bytes bytes = chunk.bytes;
  if (ss.outstanding.empty()) ss.last_progress = sched_.now();
  ss.outstanding.push_back(ref);
  ss.inflight_bytes += bytes.count();
  ++stats_[side].chunks;
  s.stats[side].chunks += 1;
  s.stats[side].bytes += bytes.count();
  des::SpanHook* h = sched_.span_hook();
  const bool traced = h != nullptr && msg.ctx.valid();
  des::TraceContext prev;
  if (traced) {
    // Striping queue-wait ends here; the chunk rides its TCP stream under
    // a transfer span and under the message's own trace.
    h->end_span(chunk.span, sched_.now());
    chunk.span = h->begin_span(des::under(msg.ctx, msg.span),
                               des::SpanPhase::kTransfer, "meta", "chunk",
                               sched_.now());
    prev = h->adopt(des::under(msg.ctx, chunk.span));
  }
  s.conn->send(side, bytes, {},
               [this, stream, side, ref](const std::any&, des::SimTime) {
                 on_chunk_delivered(stream, side, ref);
               });
  if (traced) h->adopt(prev);
  arm_watchdog(stream, side);
}

void PathTransport::on_chunk_delivered(int stream, int side, ChunkRef ref) {
  Stream& s = streams_[static_cast<std::size_t>(stream)];
  StreamSide& ss = s.side[side];
  Stats& st = stats_[side];

  const auto mit = messages_[side].find(ref.msg_seq);
  if (mit == messages_[side].end() ||
      mit->second.chunks[ref.idx].delivered) {
    ++st.duplicate_chunks;
    GTW_CHECK_HOOK(if (check_observer_ != nullptr) check_observer_->on_chunk(
        side, ref.msg_seq, ref.idx, /*duplicate=*/true));
    return;
  }
  Chunk& chunk = mit->second.chunks[ref.idx];
  chunk.delivered = true;
  ++mit->second.chunks_done;
  GTW_CHECK_HOOK(if (check_observer_ != nullptr) check_observer_->on_chunk(
      side, ref.msg_seq, ref.idx, /*duplicate=*/false));
  if (des::SpanHook* h = sched_.span_hook(); h != nullptr) {
    h->end_span(chunk.span, sched_.now());
    chunk.span = 0;
    // First chunk to land opens the reassembly/reorder wait: the receiver
    // holds partial data until the stripe completes and every earlier
    // message has gone up.
    MessageState& msg = mit->second;
    if (msg.ctx.valid() && msg.rx_span == 0)
      msg.rx_span = h->begin_span(des::under(msg.ctx, msg.span),
                                  des::SpanPhase::kReassemblyWait, "meta",
                                  "reorder", sched_.now());
  }

  const auto out = std::find_if(
      ss.outstanding.begin(), ss.outstanding.end(), [&](const ChunkRef& r) {
        return r.msg_seq == ref.msg_seq && r.idx == ref.idx;
      });
  if (out != ss.outstanding.end()) {
    ss.inflight_bytes -= chunk.bytes.count();
    ss.outstanding.erase(out);
  }
  ss.last_progress = sched_.now();

  st.reassembly_bytes += chunk.bytes.count();
  st.reassembly_peak_bytes =
      std::max(st.reassembly_peak_bytes, st.reassembly_bytes);

  deliver_ready(side);
  pump(stream, side);
}

void PathTransport::deliver_ready(int side) {
  Stats& st = stats_[side];
  auto it = messages_[side].find(next_deliver_seq_[side]);
  while (it != messages_[side].end() && it->second.complete()) {
    MessageState msg = std::move(it->second);
    messages_[side].erase(it);
    ++next_deliver_seq_[side];
    st.reassembly_bytes -= msg.bytes.count();
    ++st.delivered_messages;
    st.delivered_bytes += msg.bytes.count();
    GTW_CHECK_HOOK(if (check_observer_ != nullptr) check_observer_->on_message(
        side, next_deliver_seq_[side] - 1, msg.bytes.count()));
    des::SpanHook* h = sched_.span_hook();
    des::TraceContext prev;
    if (h != nullptr) {
      h->end_span(msg.rx_span, sched_.now());
      h->end_span(msg.span, sched_.now());
      prev = h->adopt(msg.ctx);
    }
    if (msg.cb) msg.cb();
    if (h != nullptr) {
      h->adopt(prev);
      if (msg.owns_trace) h->close_trace(msg.ctx, sched_.now());
    }
    it = messages_[side].find(next_deliver_seq_[side]);
  }
}

void PathTransport::arm_watchdog(int stream, int side) {
  if (cfg_.chunk_timeout == des::SimTime::zero()) return;
  StreamSide& ss = streams_[static_cast<std::size_t>(stream)].side[side];
  if (ss.watchdog.pending() || ss.outstanding.empty()) return;
  ss.watchdog = sched_.schedule_after(
      cfg_.chunk_timeout, [this, stream, side]() { on_watchdog(stream, side); });
}

void PathTransport::on_watchdog(int stream, int side) {
  StreamSide& ss = streams_[static_cast<std::size_t>(stream)].side[side];
  if (ss.outstanding.empty()) return;  // drained; re-armed on next dispatch
  const des::SimTime idle = sched_.now() - ss.last_progress;
  if (idle < cfg_.chunk_timeout) {
    // Progress since arming: sleep out the remainder.
    ss.watchdog = sched_.schedule_after(
        cfg_.chunk_timeout - idle,
        [this, stream, side]() { on_watchdog(stream, side); });
    return;
  }
  reset_stream(stream);
}

void PathTransport::reset_stream(int stream) {
  Stream& s = streams_[static_cast<std::size_t>(stream)];
  // Fold the dying connection's TCP counters into the retired totals so
  // stream_stats stays monotone across resets.
  for (int side = 0; side < 2; ++side) {
    const net::TcpConnection::Stats cs = s.conn->stats(side);
    s.retired_retransmits[side] += cs.retransmits;
    s.retired_timeouts[side] += cs.timeouts;
    s.stats[side].resets += 1;
    ++stats_[side].stream_resets;
  }
  // Reclaim undelivered chunks (both directions) for re-issue, in stable
  // (message, chunk) order, ahead of anything not yet dispatched.
  for (int side = 0; side < 2; ++side) {
    StreamSide& ss = s.side[side];
    ss.watchdog.cancel();
    ss.pace_timer.cancel();
    std::vector<ChunkRef> redo = std::move(ss.outstanding);
    ss.outstanding.clear();
    ss.inflight_bytes = 0;
    std::sort(redo.begin(), redo.end(),
              [](const ChunkRef& a, const ChunkRef& b) {
                return a.msg_seq != b.msg_seq ? a.msg_seq < b.msg_seq
                                              : a.idx < b.idx;
              });
    stats_[side].chunk_resends += redo.size();
    if (des::SpanHook* h = sched_.span_hook(); h != nullptr) {
      // A stranded chunk's transfer died with the connection: retire its
      // span as aborted and restart the clock as queue-wait for the
      // re-issue, so the trace shows the reset instead of one long blur.
      for (const ChunkRef& ref : redo) {
        auto mit = messages_[side].find(ref.msg_seq);
        if (mit == messages_[side].end()) continue;
        Chunk& c = mit->second.chunks[ref.idx];
        h->abort_span(c.span, sched_.now());
        c.span = 0;
        if (mit->second.ctx.valid())
          c.span =
              h->begin_span(des::under(mit->second.ctx, mit->second.span),
                            des::SpanPhase::kQueueWait, "meta", "chunk",
                            sched_.now());
      }
    }
    for (auto rit = redo.rbegin(); rit != redo.rend(); ++rit)
      ss.pending.push_front(*rit);
  }
  // Tear down and reopen: the old connection's in-flight frames land on
  // now-unbound ports and vanish, and the replacement starts with fresh
  // slow-start/RTO state instead of an exponentially backed-off timer.
  s.conn.reset();
  open_stream(s);
  for (int side = 0; side < 2; ++side) pump(stream, side);
}

std::size_t PathTransport::undispatched_chunks(int side) const {
  // Refs to already-delivered messages linger in pending until the stream
  // is next pumped (pump() skips them lazily); only live work counts.
  std::size_t n = 0;
  for (const Stream& s : streams_)
    for (const ChunkRef& ref : s.side[side].pending)
      if (messages_[side].find(ref.msg_seq) != messages_[side].end()) ++n;
  return n;
}

std::size_t PathTransport::outstanding_chunks(int side) const {
  std::size_t n = 0;
  for (const Stream& s : streams_) n += s.side[side].outstanding.size();
  return n;
}

bool PathTransport::work_outstanding() const {
  for (const Stream& s : streams_)
    for (int side = 0; side < 2; ++side)
      if (!s.side[side].pending.empty() || !s.side[side].outstanding.empty())
        return true;
  return false;
}

std::uint64_t PathTransport::total_retransmits() const {
  std::uint64_t total = 0;
  for (const Stream& s : streams_)
    for (int side = 0; side < 2; ++side) {
      total += s.retired_retransmits[side];
      total += s.conn->stats(side).retransmits;
    }
  return total;
}

void PathTransport::arm_controller() {
  if (cfg_.adapt_interval == des::SimTime::zero() || adapt_armed_) return;
  adapt_armed_ = true;
  adapt_timer_ = sched_.schedule_after(cfg_.adapt_interval,
                                       [this]() { on_controller_tick(); });
}

void PathTransport::on_controller_tick() {
  adapt_armed_ = false;
  const double interval_s = cfg_.adapt_interval.sec();
  for (int side = 0; side < 2; ++side) {
    const std::uint64_t delivered = stats_[side].delivered_bytes;
    goodput_[side] = units::BitRate::bps(
        static_cast<double>(delivered - last_delivered_bytes_[side]) * 8.0 /
        interval_s);
    last_delivered_bytes_[side] = delivered;
  }
  const std::uint64_t retx = total_retransmits();
  const std::uint64_t retx_delta = retx - last_retransmits_;
  last_retransmits_ = retx;

  if (retx_delta > 0) {
    // Loss observed: spread the load over one more stream (aggregate
    // congestion window recovers N times faster) and shrink each stream's
    // in-flight allowance so resets stay cheap.
    clean_intervals_ = 0;
    active_streams_ = std::min(active_streams_ + 1, cfg_.streams);
    stream_window_ = std::max(stream_window_ / 2, cfg_.chunk_bytes);
  } else {
    // Clean interval: re-open the window multiplicatively; after a few
    // consecutive clean intervals release surplus streams back to the pool
    // (a single healthy stream saturates the path by itself).
    stream_window_ = std::min(
        stream_window_ * 2, std::max(cfg_.stream_window, cfg_.chunk_bytes));
    if (++clean_intervals_ >= 3 && active_streams_ > cfg_.min_streams) {
      --active_streams_;
      clean_intervals_ = 0;
    }
  }
  // Keep ticking only while there is work; the next send() re-arms an idle
  // controller, so a finished simulation can drain its event queue.
  if (work_outstanding()) arm_controller();
}

PathTransport::StreamStats PathTransport::stream_stats(int side,
                                                       int stream) const {
  const Stream& s = streams_.at(static_cast<std::size_t>(stream));
  StreamStats out = s.stats[side];
  const net::TcpConnection::Stats cs = s.conn->stats(side);
  out.tcp_retransmits = s.retired_retransmits[side] + cs.retransmits;
  out.tcp_timeouts = s.retired_timeouts[side] + cs.timeouts;
  return out;
}

}  // namespace gtw::meta
