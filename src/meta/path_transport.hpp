// MPWide-style high-performance WAN path transport (ROADMAP item 3).
//
// One logical path per site pair, carried by N parallel simulated TCP
// streams between the two front-end hosts.  A logical message is striped
// into fixed-size chunks assigned round-robin across the active streams;
// the receiver reassembles and delivers messages strictly in send order,
// so the send/deliver contract is exactly the one `Metacomputer::wan_send`
// has always offered over a single connection.  On top of the striping:
//
//   - software packet pacing: a DES-clock token bucket per stream bounds
//     each stream's injection rate, so a many-stream path does not dump
//     correlated bursts into the shared switch buffers;
//   - stalled-stream recovery (MPWide's reconnect): a stream that makes no
//     delivery progress for `chunk_timeout` is torn down and reopened on
//     fresh ports with fresh TCP state (initial RTO, slow start), and its
//     undelivered chunks are re-issued — this sidesteps the exponentially
//     backed-off RTO a long outage leaves behind on a wounded connection;
//   - an adaptive controller: every `adapt_interval` of simulated time it
//     observes goodput and TCP retransmits and retunes the active stream
//     count and the per-stream in-flight window (grow streams / shrink the
//     window under loss, re-open the window on clean intervals).
//
// The default configuration (one stream, no pacing, no timeout, no
// controller) is a pure pass-through to a single TcpConnection: the event
// sequence is identical to pre-PathTransport builds, which keeps every
// existing BENCH_*.json artifact byte-identical.
//
// Determinism: all state advances on DES events; pacing and adaptation
// derive from simulated time only, and every container iterated is ordered
// (std::map / vectors in stable order), so a run replays bit-identically.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "des/check_hook.hpp"
#include "des/scheduler.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "units/units.hpp"

namespace gtw::meta {

// GTW-San observer (check::attach_path_transport): notified at every chunk
// arrival and every in-order message hand-off to the application, so the
// sanitizer can prove the exactly-once / strict-send-order delivery
// contract instead of trusting the reassembly bookkeeping it is checking.
// Notification-only: implementations must not call back into the path.
// Declared in every build; the notifying call sites are GTW_CHECK_HOOK-
// guarded and compile away when checking is off.
struct PathCheckObserver {
  virtual ~PathCheckObserver() = default;
  virtual void on_chunk(int side, std::uint64_t msg_seq, std::uint32_t idx,
                        bool duplicate) = 0;
  virtual void on_message(int side, std::uint64_t msg_seq,
                          std::uint64_t bytes) = 0;
};

// Per-path transport configuration.  `streams` is the connection pool size
// (connections are opened once and reused); the controller varies the
// *active* count within [min_streams, streams].
struct PathConfig {
  int streams = 1;
  units::Bytes chunk_bytes{256u << 10};  // striping granularity
  net::TcpConfig tcp;                    // per-stream TCP parameters

  // Token-bucket pacing per stream; zero rate disables pacing.  The burst
  // allowance is clamped up to one chunk so a chunk can always depart.
  units::BitRate pace_rate = units::BitRate::bps(0.0);
  units::Bytes pace_burst{128u << 10};

  // A stream with undelivered chunks and no delivery progress for this long
  // is reset (fresh connection, chunks re-issued).  Zero disables.
  des::SimTime chunk_timeout = des::SimTime::zero();

  // Adaptation period for the stream-count/window controller.  Zero
  // disables (stream count and window stay at their configured values).
  des::SimTime adapt_interval = des::SimTime::zero();
  int min_streams = 1;

  // Upper bound on un-delivered bytes handed to any one stream's TCP
  // connection; the controller halves it under loss (floor: one chunk).
  units::Bytes stream_window{2u << 20};

  // True when the configuration degenerates to a single plain connection;
  // send() then bypasses striping entirely.
  bool passthrough() const {
    return streams == 1 && pace_rate.bps() <= 0.0 &&
           chunk_timeout == des::SimTime::zero() &&
           adapt_interval == des::SimTime::zero();
  }
};

class PathTransport {
 public:
  using DeliveredCallback = std::function<void()>;

  // Side 0 sends a->b, side 1 sends b->a (the TcpConnection convention).
  // The transport uses ports [port_base, ...): two per pooled stream, plus
  // two per stream reset.
  PathTransport(des::Scheduler& sched, net::Host& a, net::Host& b,
                std::uint16_t port_base, PathConfig cfg = {});
  ~PathTransport();

  PathTransport(const PathTransport&) = delete;
  PathTransport& operator=(const PathTransport&) = delete;

  // Queue a logical message of `amount` on `side`; `on_delivered` fires at
  // the receiver's simulated time once every chunk has arrived AND every
  // earlier message from this side has been delivered (strict send order).
  void send(int side, units::Bytes amount, DeliveredCallback on_delivered);

  // --- accounting (per sending side) ---------------------------------------
  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t chunks = 0;
    std::uint64_t chunk_resends = 0;       // re-issued after a stream reset
    std::uint64_t duplicate_chunks = 0;    // arrived for an already-done chunk
    std::uint64_t stream_resets = 0;
    std::uint64_t paced_delays = 0;        // dispatches the bucket deferred
    std::uint64_t delivered_messages = 0;
    std::uint64_t delivered_bytes = 0;
    // Receiver side: bytes held for reassembly/reordering right now and at
    // the high-water mark.
    std::uint64_t reassembly_bytes = 0;
    std::uint64_t reassembly_peak_bytes = 0;
  };
  const Stats& stats(int side) const { return stats_[side]; }

  // Aggregate per-stream accounting; TCP counters accumulate across resets.
  struct StreamStats {
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;
    std::uint64_t resets = 0;
    std::uint64_t tcp_retransmits = 0;
    std::uint64_t tcp_timeouts = 0;
  };
  StreamStats stream_stats(int side, int stream) const;

  // Chunk-level work still in the pipeline (check::attach_path_transport):
  // assigned-but-undispatched and handed-to-TCP-but-undelivered chunks
  // across the whole pool.  Both must be zero once the scheduler drains —
  // a nonzero count is a chunk stranded by a stall reset.
  std::size_t undispatched_chunks(int side) const;
  std::size_t outstanding_chunks(int side) const;
  // In-flight logical messages (sent, not yet handed to the application).
  std::size_t inflight_messages(int side) const {
    return messages_[side].size();
  }

  void set_check_observer(PathCheckObserver* obs) { check_observer_ = obs; }

  int stream_count() const { return static_cast<int>(streams_.size()); }
  int active_streams() const { return active_streams_; }
  units::Bytes stream_window() const { return stream_window_; }
  // Controller's last observed aggregate goodput for traffic sent by
  // `side` (over the last adapt interval); 0 until the controller has
  // completed an interval.
  units::BitRate goodput(int side) const { return goodput_[side]; }

  const PathConfig& config() const { return cfg_; }

 private:
  // Identifies one chunk of one in-flight message on one side.
  struct ChunkRef {
    std::uint64_t msg_seq = 0;
    std::uint32_t idx = 0;
  };
  struct Chunk {
    units::Bytes bytes{0};
    bool delivered = false;
    // Open span riding the chunk (obs): queue-wait while assigned-but-
    // undispatched, transfer while in TCP.  A stall reset aborts the
    // transfer span and reopens a queue-wait span for the re-issue.
    std::uint64_t span = 0;
  };
  struct MessageState {
    units::Bytes bytes{0};
    DeliveredCallback cb;
    std::vector<Chunk> chunks;
    std::uint32_t chunks_done = 0;
    des::TraceContext ctx;      // trace of the logical message (obs)
    bool owns_trace = false;    // minted at send(); close_trace on delivery
    std::uint64_t span = 0;     // meta transfer span, send -> in-order handoff
    std::uint64_t rx_span = 0;  // reassembly/reorder wait at the receiver
    bool complete() const {
      return chunks_done == static_cast<std::uint32_t>(chunks.size());
    }
  };
  // Send-direction state of one stream (each stream carries both sides).
  struct StreamSide {
    std::deque<ChunkRef> pending;        // assigned, not yet given to TCP
    std::vector<ChunkRef> outstanding;   // in TCP, not yet delivered
    std::uint64_t inflight_bytes = 0;
    // Token bucket (bytes); refilled from simulated elapsed time.
    double tokens = 0.0;
    des::SimTime last_refill;
    des::EventHandle pace_timer;
    // Stall watchdog.
    des::EventHandle watchdog;
    des::SimTime last_progress;
  };
  struct Stream {
    std::unique_ptr<net::TcpConnection> conn;
    StreamSide side[2];
    StreamStats stats[2];
    // TCP counters of connections discarded by earlier resets.
    std::uint64_t retired_retransmits[2] = {0, 0};
    std::uint64_t retired_timeouts[2] = {0, 0};
  };

  void open_stream(Stream& s);
  void pump(int stream, int side);
  void dispatch(int stream, int side, ChunkRef ref);
  void on_chunk_delivered(int stream, int side, ChunkRef ref);
  void deliver_ready(int side);
  void arm_watchdog(int stream, int side);
  void on_watchdog(int stream, int side);
  void reset_stream(int stream);
  void refill_tokens(StreamSide& ss);
  void arm_controller();
  void on_controller_tick();
  bool work_outstanding() const;
  std::uint64_t total_retransmits() const;

  des::Scheduler& sched_;
  net::Host* host_a_;
  net::Host* host_b_;
  PathConfig cfg_;
  std::uint16_t next_port_;

  std::vector<Stream> streams_;
  int active_streams_ = 1;
  units::Bytes stream_window_{0};
  int rr_cursor_[2] = {0, 0};

  // Per sending side: in-flight messages by sequence number and the next
  // sequence the receiver may deliver (strict send order).
  std::map<std::uint64_t, MessageState> messages_[2];
  std::uint64_t next_send_seq_[2] = {0, 0};
  std::uint64_t next_deliver_seq_[2] = {0, 0};

  Stats stats_[2];

  // Adaptive controller state.
  des::EventHandle adapt_timer_;
  bool adapt_armed_ = false;
  std::uint64_t last_delivered_bytes_[2] = {0, 0};
  std::uint64_t last_retransmits_ = 0;
  int clean_intervals_ = 0;
  units::BitRate goodput_[2] = {units::BitRate::bps(0.0),
                                units::BitRate::bps(0.0)};
  PathCheckObserver* check_observer_ = nullptr;
};

}  // namespace gtw::meta
