// Simultaneous resource allocation across the metacomputer.
//
// The paper closes with: "the problem of simultaneous resource allocation
// in a distributed environment will become more apparent when the
// application is used for clinical research" — the fMRI pipeline needs the
// scanner slot, T3E PEs, the Onyx 2 and the workbench *at the same time*.
// This broker implements the UNICORE-style answer (Erwin 1997, the paper's
// reference [2]): advance reservations of PE counts on several machines
// for a common time window, with earliest-fit placement.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "des/time.hpp"
#include "meta/metacomputer.hpp"

namespace gtw::meta {

struct ResourcePart {
  int machine = 0;
  int pes = 0;
};

struct Reservation {
  int id = 0;
  des::SimTime start;
  des::SimTime end;
  std::vector<ResourcePart> parts;
  bool valid() const { return id > 0; }
};

class CoallocationBroker {
 public:
  explicit CoallocationBroker(Metacomputer& mc) : mc_(&mc) {}

  // Reserve all `parts` simultaneously for `duration`, starting no earlier
  // than `earliest_start`; returns the booked window (earliest feasible
  // start).  Throws std::invalid_argument if any part exceeds its
  // machine's total PE count.
  Reservation reserve(const std::vector<ResourcePart>& parts,
                      des::SimTime duration, des::SimTime earliest_start);

  // Cancel a reservation (no-op for unknown ids).
  void release(int reservation_id);

  // PEs of `machine` free at time `at`.
  int available(int machine, des::SimTime at) const;

  // Fraction of machine-PE-time reserved over [from, to) — the utilisation
  // number a centre operator watches.
  double utilisation(int machine, des::SimTime from, des::SimTime to) const;

  std::size_t active_reservations() const { return booked_.size(); }

 private:
  bool fits(const std::vector<ResourcePart>& parts, des::SimTime start,
            des::SimTime end) const;
  int reserved_at(int machine, des::SimTime at) const;

  Metacomputer* mc_;
  int next_id_ = 1;
  std::map<int, Reservation> booked_;
};

}  // namespace gtw::meta
