// Language interoperability helpers (an MPI-2 theme the paper names:
// "language-interoperability is needed to couple applications that are
// implemented in different programming languages").
//
// The practical 1999 pain point when coupling a Fortran code (MOM-2, IFS)
// to a C one: multi-dimensional array layout.  A C code iterating
// field[z][y][x] and a Fortran code declaring FIELD(NZ,NY,NX) with the same
// index meaning store the same logical field with *reversed* dimension
// order (C: x fastest; that Fortran declaration: z fastest).  These helpers
// perform the dimension-order reversal, and TypedEnvelope carries an
// element-type tag so both sides compute identical byte counts.
#pragma once

#include <cstddef>
#include <vector>

#include "meta/communicator.hpp"

namespace gtw::meta {

// 2-D: `src` has x fastest (index = x + nx*y); the result has y fastest
// (index = y + ny*x).  Applying it twice with swapped extents round-trips.
template <typename T>
std::vector<T> to_column_major(const std::vector<T>& src, int nx, int ny) {
  std::vector<T> out(src.size());
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x)
      out[static_cast<std::size_t>(x) * ny + y] =
          src[static_cast<std::size_t>(y) * nx + x];
  return out;
}

template <typename T>
std::vector<T> from_column_major(const std::vector<T>& src, int nx, int ny) {
  std::vector<T> out(src.size());
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x)
      out[static_cast<std::size_t>(y) * nx + x] =
          src[static_cast<std::size_t>(x) * ny + y];
  return out;
}

// 3-D: x-fastest (index = x + nx*(y + ny*z)) <-> z-fastest
// (index = z + nz*(y + ny*x)).
template <typename T>
std::vector<T> to_column_major(const std::vector<T>& src, int nx, int ny,
                               int nz) {
  std::vector<T> out(src.size());
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x)
        out[static_cast<std::size_t>(z) +
            static_cast<std::size_t>(nz) *
                (static_cast<std::size_t>(y) +
                 static_cast<std::size_t>(ny) * static_cast<std::size_t>(x))] =
            src[(static_cast<std::size_t>(z) * ny + y) * nx + x];
  return out;
}

template <typename T>
std::vector<T> from_column_major(const std::vector<T>& src, int nx, int ny,
                                 int nz) {
  std::vector<T> out(src.size());
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x)
        out[(static_cast<std::size_t>(z) * ny + y) * nx + x] =
            src[static_cast<std::size_t>(z) +
                static_cast<std::size_t>(nz) *
                    (static_cast<std::size_t>(y) +
                     static_cast<std::size_t>(ny) *
                         static_cast<std::size_t>(x))];
  return out;
}

// Self-describing payload: element type + count travel with the data, so a
// receiver written in "another language" can validate the layout contract.
struct TypedEnvelope {
  Datatype type = Datatype::kByte;
  std::uint64_t count = 0;
  bool column_major = false;
  std::any data;

  std::uint64_t bytes() const { return count * datatype_size(type); }
};

}  // namespace gtw::meta
