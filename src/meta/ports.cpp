#include "meta/ports.hpp"

namespace gtw::meta {

void PortRegistry::accept(const std::string& name,
                          std::shared_ptr<Communicator> local,
                          ConnectCallback cb) {
  if (auto it = connects_.find(name); it != connects_.end()) {
    Pending connector = std::move(it->second);
    connects_.erase(it);
    rendezvous(name, Pending{std::move(local), std::move(cb)},
               std::move(connector));
    return;
  }
  accepts_[name] = Pending{std::move(local), std::move(cb)};
}

void PortRegistry::connect(const std::string& name,
                           std::shared_ptr<Communicator> local,
                           ConnectCallback cb) {
  if (auto it = accepts_.find(name); it != accepts_.end()) {
    Pending acceptor = std::move(it->second);
    accepts_.erase(it);
    rendezvous(name, std::move(acceptor),
               Pending{std::move(local), std::move(cb)});
    return;
  }
  connects_[name] = Pending{std::move(local), std::move(cb)};
}

void PortRegistry::rendezvous(const std::string&, Pending acceptor,
                              Pending connector) {
  // Merge: acceptor group first, connector group second.
  std::vector<ProcLoc> merged;
  for (int r = 0; r < acceptor.comm->size(); ++r)
    merged.push_back(acceptor.comm->location(r));
  for (int r = 0; r < connector.comm->size(); ++r)
    merged.push_back(connector.comm->location(r));
  auto comm = std::make_shared<Communicator>(acceptor.comm->metacomputer(),
                                             std::move(merged));

  const int a_size = acceptor.comm->size();
  const int c_size = connector.comm->size();
  Intercomm for_acceptor{comm, 0, a_size, a_size, c_size};
  Intercomm for_connector{comm, a_size, c_size, 0, a_size};

  // Establishment costs one control round trip between the lead machines.
  Metacomputer& mc = comm->metacomputer();
  const int ma = acceptor.comm->location(0).machine;
  const int mb = connector.comm->location(0).machine;
  auto finish = [acb = std::move(acceptor.cb), ccb = std::move(connector.cb),
                 for_acceptor, for_connector]() {
    acb(for_acceptor);
    ccb(for_connector);
  };
  if (ma == mb || !mc.linked(ma, mb)) {
    mc.scheduler().schedule_after(mc.intra_cost(ma, units::Bytes{kMetaHeaderBytes}),
                                  std::move(finish));
    return;
  }
  mc.wan_send(mb, ma, units::Bytes{kMetaHeaderBytes},
              [&mc, ma, mb, finish]() {
    mc.wan_send(ma, mb, units::Bytes{kMetaHeaderBytes}, finish);
  });
}

}  // namespace gtw::meta
