// MPI-flavoured communicator over the metacomputer, written in
// continuation-passing style (a discrete-event simulation cannot block).
//
// Supported subset, mirroring what the paper says MetaMPI provided:
//   - point-to-point send/recv with tag and source matching (wildcards),
//     routed intra-machine (interconnect model) or inter-machine (real
//     simulated TCP over the testbed);
//   - collectives: barrier, broadcast, reduce/allreduce, gather -- staged
//     as intra-machine tree + WAN exchange between machine leaders, which
//     is exactly the hierarchical scheme a metacomputing-aware MPI uses;
//   - MPI-2 features called out in the paper: dynamic process creation
//     (spawn), and name-based connect/accept yielding intercommunicators
//     (used by FIRE for realtime visualization attachment), plus typed
//     datatypes for language interoperability.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "des/check_hook.hpp"
#include "flow/tracing.hpp"
#include "meta/metacomputer.hpp"
#include "trace/trace.hpp"

namespace gtw::meta {

// GTW-San observer (check::attach_communicator): notified at the outcome
// decision of every watchdog-guarded WAN delivery and at every unreachable
// report, so the sanitizer can prove the retry policy's contract — a
// message reported unreachable is never afterwards handed to the
// application.  Notification-only; must not call back into the
// communicator.  The interface and registration slot exist in every build;
// the notifying call sites are GTW_CHECK_HOOK-guarded and compile away
// when checking is off.
struct CommCheckObserver {
  virtual ~CommCheckObserver() = default;
  // A WAN copy arrived.  Exactly one of the three describes its fate:
  // handed to the application, suppressed as a duplicate of an earlier
  // delivery, or dropped because the message was already abandoned.
  virtual void on_wan_outcome(int src_rank, int dst_rank,
                              bool delivered_to_app, bool after_abandon,
                              bool duplicate) = 0;
  virtual void on_unreachable(int src_rank, int dst_rank) = 0;
};

// Process location: which machine, which processing element on it.
struct ProcLoc {
  int machine = 0;
  int pe = 0;
};

// Language-interoperability datatypes (MPI-2 brings bindings whose element
// sizes must agree across languages; we carry them so message sizes are
// computed identically on both sides).
enum class Datatype : std::uint8_t {
  kByte,
  kInt32,
  kInt64,
  kFloat32,
  kFloat64,
};
std::uint32_t datatype_size(Datatype t);

struct Message {
  int source = -1;
  int tag = 0;
  std::uint64_t bytes = 0;
  std::any data;
};

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

enum class ReduceOp { kSum, kMax, kMin };

// Failure handling for WAN point-to-point traffic (MPWide-style: WAN
// messaging libraries treat path degradation and reconnection as their
// problem, not the application's).  A watchdog per WAN send retransmits
// with exponential backoff; a delivery seen after a retransmission was
// issued is suppressed as a duplicate, and a message whose retries are
// exhausted is reported through the unreachable callback instead of
// hanging the application forever.
struct RetryPolicy {
  des::SimTime timeout = des::SimTime::seconds(2);  // first-attempt watchdog
  int max_retries = 3;                              // beyond the first send
  double backoff = 2.0;                             // timeout multiplier
  // Ceiling on the backed-off watchdog timeout.  Without it the doubling
  // grows without bound and a high-retry policy ends up waiting simulated
  // hours between attempts long after the path has recovered.
  des::SimTime max_timeout = des::SimTime::seconds(30);
};

class Communicator {
 public:
  using RecvCallback = std::function<void(const Message&)>;
  using Callback = std::function<void()>;

  // A communicator over explicit process locations.
  Communicator(Metacomputer& mc, std::vector<ProcLoc> ranks);

  int size() const { return static_cast<int>(ranks_.size()); }
  const ProcLoc& location(int rank) const {
    return ranks_.at(static_cast<std::size_t>(rank));
  }

  // --- point to point -----------------------------------------------------
  // `on_sent` fires at local completion (buffer reusable).  For sends not
  // guarded by a retry watchdog that is immediate — the transport owns the
  // bytes from here on.  Under a retry policy the library may retransmit, so
  // the buffer stays pinned: `on_sent` is deferred to the first successful
  // delivery and never fires for a message reported unreachable.  Delivery
  // drives the matching recv's callback at the receiver's simulated time.
  void send(int src_rank, int dst_rank, int tag, std::uint64_t bytes,
            std::any data = {}, Callback on_sent = nullptr);
  void send_typed(int src_rank, int dst_rank, int tag, std::uint64_t count,
                  Datatype type, std::any data = {}, Callback on_sent = nullptr);
  void recv(int rank, int source, int tag, RecvCallback cb);

  // --- collectives ----------------------------------------------------------
  // Every rank must call; callbacks fire once all ranks have entered and the
  // staged (intra tree + WAN leader exchange) communication completes.
  void barrier(int rank, Callback cb);
  void broadcast(int rank, int root, std::uint64_t bytes,
                 std::function<void(const std::any&)> cb,
                 std::any root_data = {});
  void allreduce(int rank, const std::vector<double>& contribution,
                 ReduceOp op, std::function<void(std::vector<double>)> cb);
  void gather(int rank, std::uint64_t bytes, std::any data, int root,
              std::function<void(std::vector<std::any>)> root_cb);
  // Root distributes one payload per rank; every rank's callback receives
  // its slice.
  void scatter(int rank, int root, std::uint64_t bytes_per_rank,
               std::function<void(const std::any&)> cb,
               std::vector<std::any> root_data = {});
  // Every rank contributes one payload per destination; every rank's
  // callback receives the column addressed to it.
  void alltoall(int rank, std::uint64_t bytes_per_pair,
                std::vector<std::any> contributions,
                std::function<void(std::vector<std::any>)> cb);
  // Combined send+recv, the classic halo-exchange primitive.
  void sendrecv(int rank, int dst, int send_tag, std::uint64_t send_bytes,
                std::any send_data, int src, int recv_tag, RecvCallback cb);

  // --- MPI-2 dynamic processes ---------------------------------------------
  // Spawn `n` new processes on `machine`; yields an intercommunicator whose
  // local group is this communicator's ranks and whose remote group is the
  // spawned processes (appended after the local group).
  void spawn(int machine, int n,
             std::function<void(std::shared_ptr<Communicator> intercomm)> cb);

  Metacomputer& metacomputer() { return *mc_; }

  // VAMPIR integration (the paper's Metacomputing Tools project: "the
  // parallel tracing tool VAMPIR is extended for the use with this
  // library").  When attached, every point-to-point send and delivery is
  // recorded with its simulated timestamp, and each collective shows up as
  // an enter/leave pair per rank.  The recorder must outlive the
  // communicator and have at least size() ranks.
  void attach_trace(trace::TraceRecorder* rec) { tracer_.attach(rec); }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  // --- failure handling ------------------------------------------------------
  // Enable watchdog/retry on WAN point-to-point sends.  Off by default:
  // the simulated TCP transport is reliable, so retries only matter when a
  // FaultPlan (or manual Link::set_up) breaks the path mid-run.
  void set_retry_policy(RetryPolicy policy) {
    retry_ = policy;
    retry_enabled_ = true;
  }
  // `attempts` counts every transmission of the abandoned message.
  using UnreachableCallback =
      std::function<void(int src_rank, int dst_rank, int attempts)>;
  void on_unreachable(UnreachableCallback cb) { unreachable_ = std::move(cb); }

  struct ReliabilityStats {
    std::uint64_t wan_retries = 0;           // watchdog-triggered resends
    std::uint64_t duplicates_suppressed = 0; // late originals after a retry
    std::uint64_t unreachable_reports = 0;   // messages given up on
    // Late deliveries of a message already reported unreachable: dropped, so
    // the application never sees a recv for a message it was told failed.
    std::uint64_t dropped_after_unreachable = 0;
  };
  const ReliabilityStats& reliability() const { return reliability_; }

  // Per-(src rank, dst rank) point-to-point accounting, for the per-peer
  // breakdown the obs layer exports (collectives are not attributed here).
  struct PeerStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t retries = 0;  // watchdog resends on this pair
  };
  const std::map<std::pair<int, int>, PeerStats>& peer_traffic() const {
    return peer_traffic_;
  }

  void set_check_observer(CommCheckObserver* obs) { check_observer_ = obs; }

 private:
  struct PostedRecv {
    int source;
    int tag;
    RecvCallback cb;
  };
  struct RankState {
    std::deque<PostedRecv> recvs;
    std::deque<Message> unexpected;
  };
  struct Collective {
    int arrived = 0;
    std::vector<Callback> continuations;       // per rank, completion actions
    std::vector<std::vector<double>> contribs; // allreduce
    std::vector<std::any> gathered;            // gather / scatter slices
    std::vector<std::vector<std::any>> matrix; // alltoall
    std::any bcast_data;
    std::uint64_t bytes = 0;
    int root = 0;
  };

  // In-flight state of one watchdog-guarded WAN message.
  struct WanSendState {
    int src_rank = 0, dst_rank = 0;
    int src_machine = 0, dst_machine = 0;
    std::uint64_t bytes = 0;
    Message msg;
    int attempts = 0;
    bool delivered = false;
    bool abandoned = false;  // unreachable reported; late copies are dropped
    des::SimTime next_timeout;
    des::EventHandle watchdog;
    Callback on_sent;  // deferred until the first successful delivery
    // Causal trace of the guarded message (obs): minted here when the send
    // is a workload origin; every attempt's transport spans nest under it.
    des::TraceContext ctx;
    bool owns_trace = false;
    // Open retry-backoff span: begun when the first watchdog-triggered
    // resend is issued, ended at delivery, aborted on unreachable.
    std::uint64_t retry_span = 0;
  };

  void deliver(int dst_rank, Message msg);
  void wan_attempt(std::shared_ptr<WanSendState> st);
  bool matches(const PostedRecv& r, const Message& m) const;
  // Staged completion of a collective that moves `bytes` per WAN hop;
  // `name` is the trace state every rank leaves on completion.
  void finish_collective(std::uint64_t key, const char* name,
                         std::uint64_t wan_bytes,
                         std::function<void(int rank)> per_rank);
  des::SimTime intra_tree_cost(std::uint64_t bytes) const;
  // Machines participating, and the designated leader rank per machine.
  std::vector<int> machines_involved() const;

  Metacomputer* mc_;
  std::vector<ProcLoc> ranks_;
  std::vector<RankState> states_;
  std::map<std::uint64_t, Collective> collectives_;
  std::uint64_t barrier_seq_ = 0, bcast_seq_ = 0, reduce_seq_ = 0,
                gather_seq_ = 0, scatter_seq_ = 0, alltoall_seq_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::map<std::pair<int, int>, PeerStats> peer_traffic_;
  RetryPolicy retry_;
  bool retry_enabled_ = false;
  UnreachableCallback unreachable_;
  ReliabilityStats reliability_;
  flow::Tracer tracer_;  // shared hook layer with the dataflow engine
  CommCheckObserver* check_observer_ = nullptr;
};

}  // namespace gtw::meta
