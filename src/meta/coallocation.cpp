#include "meta/coallocation.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace gtw::meta {

int CoallocationBroker::reserved_at(int machine, des::SimTime at) const {
  int used = 0;
  for (const auto& [id, r] : booked_) {
    if (at < r.start || at >= r.end) continue;
    for (const ResourcePart& p : r.parts)
      if (p.machine == machine) used += p.pes;
  }
  return used;
}

int CoallocationBroker::available(int machine, des::SimTime at) const {
  return mc_->machine(machine).max_pes - reserved_at(machine, at);
}

bool CoallocationBroker::fits(const std::vector<ResourcePart>& parts,
                              des::SimTime start, des::SimTime end) const {
  // Capacity is piecewise constant between reservation boundaries; it is
  // enough to check the start of the window and every boundary within it.
  std::set<std::int64_t> checkpoints{start.ps()};
  for (const auto& [id, r] : booked_) {
    if (r.start > start && r.start < end) checkpoints.insert(r.start.ps());
    if (r.end > start && r.end < end) checkpoints.insert(r.end.ps());
  }
  for (std::int64_t t : checkpoints) {
    for (const ResourcePart& p : parts) {
      if (available(p.machine, des::SimTime::picoseconds(t)) < p.pes)
        return false;
    }
  }
  return true;
}

Reservation CoallocationBroker::reserve(const std::vector<ResourcePart>& parts,
                                        des::SimTime duration,
                                        des::SimTime earliest_start) {
  for (const ResourcePart& p : parts) {
    if (p.pes <= 0 || p.pes > mc_->machine(p.machine).max_pes)
      throw std::invalid_argument("reserve: part exceeds machine capacity");
  }
  // Candidate starts: the requested time plus every existing reservation
  // end after it (capacity can only increase at those instants).
  std::set<std::int64_t> candidates{earliest_start.ps()};
  for (const auto& [id, r] : booked_)
    if (r.end > earliest_start) candidates.insert(r.end.ps());

  for (std::int64_t c : candidates) {
    const des::SimTime start = des::SimTime::picoseconds(c);
    if (fits(parts, start, start + duration)) {
      Reservation res;
      res.id = next_id_++;
      res.start = start;
      res.end = start + duration;
      res.parts = parts;
      booked_[res.id] = res;
      return res;
    }
  }
  // Unreachable: the end of the last reservation always fits (capacity is
  // then fully free), and it is among the candidates.
  throw std::logic_error("reserve: no feasible start found");
}

void CoallocationBroker::release(int reservation_id) {
  booked_.erase(reservation_id);
}

double CoallocationBroker::utilisation(int machine, des::SimTime from,
                                       des::SimTime to) const {
  const double span = (to - from).sec();
  if (span <= 0.0) return 0.0;
  double pe_seconds = 0.0;
  for (const auto& [id, r] : booked_) {
    const des::SimTime a = std::max(r.start, from);
    const des::SimTime b = std::min(r.end, to);
    if (b <= a) continue;
    for (const ResourcePart& p : r.parts)
      if (p.machine == machine)
        pe_seconds += static_cast<double>(p.pes) * (b - a).sec();
  }
  return pe_seconds / (static_cast<double>(mc_->machine(machine).max_pes) *
                       span);
}

}  // namespace gtw::meta
