// Small dense linear algebra used by the numerical kernels: the FIRE motion
// correction and reference-vector optimisation, the MUSIC dipole scan, and
// the groundwater flow solver.  Column counts here are tiny (<= a few
// hundred), so a straightforward row-major dense matrix is the right tool.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace gtw::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  Matrix transposed() const;
  Matrix operator*(const Matrix& o) const;
  Vector operator*(const Vector& v) const;
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix& operator*=(double s);

  // Frobenius norm.
  double norm() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

// Basic vector helpers.
double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
Vector axpy(double alpha, const Vector& x, const Vector& y);  // alpha*x + y
void scale(Vector& v, double s);

// Sample Pearson correlation between two equal-length series.
double pearson(const Vector& a, const Vector& b);

}  // namespace gtw::linalg
