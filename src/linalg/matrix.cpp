#include "linalg/matrix.hpp"

#include <cmath>

namespace gtw::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& o) const {
  assert(cols_ == o.rows_);
  Matrix out(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < o.cols_; ++c) out(r, c) += a * o(k, c);
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  assert(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += o.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& o) const {
  assert(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= o.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

Vector axpy(double alpha, const Vector& x, const Vector& y) {
  assert(x.size() == y.size());
  Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = alpha * x[i] + y[i];
  return out;
}

void scale(Vector& v, double s) {
  for (auto& x : v) x *= s;
}

double pearson(const Vector& a, const Vector& b) {
  assert(a.size() == b.size() && !a.empty());
  const double n = static_cast<double>(a.size());
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sa += a[i];
    sb += b[i];
    saa += a[i] * a[i];
    sbb += b[i] * b[i];
    sab += a[i] * b[i];
  }
  const double cov = n * sab - sa * sb;
  const double va = n * saa - sa * sa;
  const double vb = n * sbb - sb * sb;
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace gtw::linalg
