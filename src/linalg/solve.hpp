// Direct solvers: Householder-QR least squares (robust path, used by the
// detrending and RVO fits), Cholesky for SPD normal equations (fast path for
// the 6x6 systems in motion correction), and a pivoted LU fallback.
#pragma once

#include "linalg/matrix.hpp"

namespace gtw::linalg {

// Minimise ||A x - b||_2 via Householder QR.  Requires rows >= cols and full
// column rank; returns the solution vector of length A.cols().
Vector solve_least_squares_qr(const Matrix& a, const Vector& b);

// Solve the SPD system M x = b by Cholesky.  Throws std::runtime_error if M
// is not positive definite to working precision.
Vector solve_spd(const Matrix& m, const Vector& b);

// Solve a general square system by LU with partial pivoting.
Vector solve_lu(Matrix a, Vector b);

// Least squares via normal equations (A^T A) x = A^T b; cheaper than QR for
// very tall thin systems, less accurate for ill-conditioned ones.
Vector solve_least_squares_normal(const Matrix& a, const Vector& b);

}  // namespace gtw::linalg
