#include "linalg/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace gtw::linalg {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  if (!is_power_of_two(n))
    throw std::invalid_argument("fft: length must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (Complex& x : a) x /= static_cast<double>(n);
  }
}

void fft2d(std::vector<Complex>& data, int nx, int ny, bool inverse) {
  if (data.size() != static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny))
    throw std::invalid_argument("fft2d: size mismatch");
  // Rows.
  std::vector<Complex> row(static_cast<std::size_t>(nx));
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x)
      row[static_cast<std::size_t>(x)] =
          data[static_cast<std::size_t>(y) * nx + x];
    fft(row, inverse);
    for (int x = 0; x < nx; ++x)
      data[static_cast<std::size_t>(y) * nx + x] =
          row[static_cast<std::size_t>(x)];
  }
  // Columns.
  std::vector<Complex> col(static_cast<std::size_t>(ny));
  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y)
      col[static_cast<std::size_t>(y)] =
          data[static_cast<std::size_t>(y) * nx + x];
    fft(col, inverse);
    for (int y = 0; y < ny; ++y)
      data[static_cast<std::size_t>(y) * nx + x] =
          col[static_cast<std::size_t>(y)];
  }
}

}  // namespace gtw::linalg
