#include "linalg/solve.hpp"

#include <cmath>
#include <stdexcept>

namespace gtw::linalg {

Vector solve_least_squares_qr(const Matrix& a, const Vector& b) {
  const std::size_t m = a.rows(), n = a.cols();
  if (m < n) throw std::runtime_error("QR least squares: underdetermined");
  if (b.size() != m) throw std::runtime_error("QR least squares: size mismatch");

  // Work on copies; r becomes the R factor, rhs accumulates Q^T b.
  Matrix r = a;
  Vector rhs = b;

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) alpha += r(i, k) * r(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0) throw std::runtime_error("QR: rank-deficient matrix");
    if (r(k, k) > 0) alpha = -alpha;

    Vector v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vnorm2 = 0.0;
    for (double x : v) vnorm2 += x * x;
    if (vnorm2 == 0.0) continue;

    // Apply H = I - 2 v v^T / (v^T v) to the remaining columns and rhs.
    for (std::size_t c = k; c < n; ++c) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * r(i, c);
      s = 2.0 * s / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= s * v[i - k];
    }
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += v[i - k] * rhs[i];
    s = 2.0 * s / vnorm2;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= s * v[i - k];
  }

  // Back substitution on the upper triangle.
  Vector x(n, 0.0);
  for (std::size_t ki = n; ki-- > 0;) {
    double acc = rhs[ki];
    for (std::size_t c = ki + 1; c < n; ++c) acc -= r(ki, c) * x[c];
    if (std::abs(r(ki, ki)) < 1e-300)
      throw std::runtime_error("QR: singular R");
    x[ki] = acc / r(ki, ki);
  }
  return x;
}

Vector solve_spd(const Matrix& m_in, const Vector& b) {
  const std::size_t n = m_in.rows();
  if (m_in.cols() != n || b.size() != n)
    throw std::runtime_error("solve_spd: size mismatch");
  // Cholesky M = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = m_in(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) throw std::runtime_error("solve_spd: not positive definite");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  // Forward then back substitution.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

Vector solve_lu(Matrix a, Vector b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::runtime_error("solve_lu: size mismatch");
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        piv = i;
      }
    }
    if (best < 1e-300) throw std::runtime_error("solve_lu: singular matrix");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(piv, c));
      std::swap(b[k], b[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a(i, k) / a(k, k);
      a(i, k) = 0.0;
      for (std::size_t c = k + 1; c < n; ++c) a(i, c) -= f * a(k, c);
      b[i] -= f * b[k];
    }
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x[c];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

Vector solve_least_squares_normal(const Matrix& a, const Vector& b) {
  const Matrix at = a.transposed();
  return solve_spd(at * a, at * b);
}

}  // namespace gtw::linalg
