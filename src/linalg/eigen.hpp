// Cyclic Jacobi eigensolver for real symmetric matrices.  Used by the MEG
// MUSIC application to decompose sensor covariance matrices (the paper's
// pmusic code does exactly this on the T3E/T90 metacomputer).
#pragma once

#include "linalg/matrix.hpp"

namespace gtw::linalg {

struct EigenResult {
  Vector values;       // descending order
  Matrix vectors;      // column i is the eigenvector for values[i]
  int sweeps = 0;      // Jacobi sweeps executed
};

// Decompose symmetric `m`.  Throws std::runtime_error if `m` is not square
// or the iteration fails to converge within `max_sweeps`.
EigenResult eigen_symmetric(const Matrix& m, int max_sweeps = 64,
                            double tol = 1e-12);

}  // namespace gtw::linalg
