// Matrix-free conjugate gradient.  The groundwater flow solver (TRACE
// substitute) uses it with a 7-point stencil operator; FIRE's extended RVO
// refinement uses the small dense form.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"

namespace gtw::linalg {

struct CgResult {
  Vector x;
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

// Solve A x = b where `apply` computes y = A x for an SPD operator A.
CgResult conjugate_gradient(
    const std::function<void(const Vector&, Vector&)>& apply, const Vector& b,
    int max_iterations, double rel_tol, const Vector* x0 = nullptr);

}  // namespace gtw::linalg
