#include "linalg/cg.hpp"

#include <cmath>

namespace gtw::linalg {

CgResult conjugate_gradient(
    const std::function<void(const Vector&, Vector&)>& apply, const Vector& b,
    int max_iterations, double rel_tol, const Vector* x0) {
  const std::size_t n = b.size();
  CgResult out;
  out.x = x0 != nullptr ? *x0 : Vector(n, 0.0);

  Vector r(n), p(n), ap(n);
  apply(out.x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  p = r;

  const double bnorm = std::max(norm2(b), 1e-300);
  double rr = dot(r, r);

  for (int it = 0; it < max_iterations; ++it) {
    out.residual = std::sqrt(rr) / bnorm;
    if (out.residual < rel_tol) {
      out.converged = true;
      out.iterations = it;
      return out;
    }
    apply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // operator not SPD (or p == 0)
    const double alpha = rr / pap;
    for (std::size_t i = 0; i < n; ++i) {
      out.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    out.iterations = it + 1;
  }
  out.residual = std::sqrt(rr) / bnorm;
  out.converged = out.residual < rel_tol;
  return out;
}

}  // namespace gtw::linalg
