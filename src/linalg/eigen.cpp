#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gtw::linalg {

EigenResult eigen_symmetric(const Matrix& m_in, int max_sweeps, double tol) {
  const std::size_t n = m_in.rows();
  if (m_in.cols() != n) throw std::runtime_error("eigen_symmetric: not square");

  Matrix a = m_in;
  Matrix v = Matrix::identity(n);

  auto offdiag = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    return std::sqrt(s);
  };

  const double scale = std::max(a.norm(), 1e-300);
  int sweep = 0;
  for (; sweep < max_sweeps && offdiag() > tol * scale; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) <= 1e-300) continue;
        // Jacobi rotation annihilating a(p,q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (offdiag() > tol * scale * 100.0)
    throw std::runtime_error("eigen_symmetric: no convergence");

  // Sort descending by eigenvalue.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  EigenResult out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    out.values[c] = a(idx[c], idx[c]);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, c) = v(r, idx[c]);
  }
  out.sweeps = sweep;
  return out;
}

}  // namespace gtw::linalg
