// Radix-2 FFT (iterative Cooley-Tukey) and 2-D helpers.  Used by the
// scanner module: an EPI acquisition samples k-space, and the scanner's
// control workstation reconstructs the image by inverse Fourier transform
// before handing it to FIRE's RT-server — part of the ~1.5 s the paper
// budgets between scan and server.
#pragma once

#include <complex>
#include <vector>

namespace gtw::linalg {

using Complex = std::complex<double>;

// In-place FFT of a power-of-two-length vector; `inverse` applies the 1/N
// scaling.  Throws std::invalid_argument for non-power-of-two sizes.
void fft(std::vector<Complex>& data, bool inverse);

// Row-major 2-D transform of an ny x nx grid (both powers of two).
void fft2d(std::vector<Complex>& data, int nx, int ny, bool inverse);

bool is_power_of_two(std::size_t n);

}  // namespace gtw::linalg
