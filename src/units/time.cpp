#include "units/time.hpp"

#include <cmath>
#include <cstdio>

namespace gtw::units {

std::string SimTime::to_string() const {
  const double s = sec();
  char buf[64];
  if (std::abs(s) >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  } else if (std::abs(s) >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", s * 1e3);
  } else if (std::abs(s) >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f us", s * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ns", s * 1e9);
  }
  return buf;
}

SimTime transmission_time(std::uint64_t bytes, double bits_per_second) {
  const double ps = static_cast<double>(bytes) * 8.0 * 1e12 / bits_per_second;
  return SimTime::picoseconds(static_cast<std::int64_t>(std::ceil(ps)));
}

}  // namespace gtw::units
