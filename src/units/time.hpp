// Simulated-time representation for the Gigabit Testbed West simulator.
//
// Time is an integer count of picoseconds.  At 2.4 Gbit/s an ATM cell lasts
// ~176.7 ns, so nanosecond resolution would accumulate rounding error over
// the millions of cells in a bulk transfer; picoseconds keep serialization
// arithmetic exact to ~0.2% of a cell and still cover ~106 days of simulated
// time in a signed 64-bit value.
//
// SimTime is a dimensioned quantity like Bytes or BitRate, so it lives in
// src/units/ at the very bottom of the module DAG (layers.toml): units
// depends on nothing, des re-exports the type as des::SimTime (des/time.hpp)
// and everything above keeps spelling it that way.  The simulated *clock* —
// where "now" comes from — stays des::Scheduler's business.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace gtw::units {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  static constexpr SimTime picoseconds(std::int64_t ps) { return SimTime{ps}; }
  static constexpr SimTime nanoseconds(std::int64_t ns) {
    return SimTime{ns * 1'000};
  }
  static constexpr SimTime microseconds(std::int64_t us) {
    return SimTime{us * 1'000'000};
  }
  static constexpr SimTime milliseconds(std::int64_t ms) {
    return SimTime{ms * 1'000'000'000};
  }
  static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e12 + (s >= 0 ? 0.5 : -0.5))};
  }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ps_ + b.ps_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ps_ - b.ps_};
  }
  constexpr SimTime& operator+=(SimTime o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ps_ -= o.ps_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ps_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  // Human-readable rendering with an auto-selected unit, e.g. "1.374 s".
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

// Exact serialization time of `bytes` at `bits_per_second` (rounded up to
// the next picosecond so repeated sends never run ahead of the wire).
SimTime transmission_time(std::uint64_t bytes, double bits_per_second);

}  // namespace gtw::units
