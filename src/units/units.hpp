// Compile-time dimensional analysis for the simulator.
//
// Every headline number this reproduction must match — SDH payload
// fractions, ATM cell tax, HiPPI vs OC-12 throughput, FIRE delay budgets —
// is a unit computation.  Outside SimTime (units/time.hpp) the tree used to pass raw
// doubles and integers: net spoke bit/s while exec spoke byte/s, and sizes
// were bare uint64_t that were sometimes bytes and sometimes bits.  This
// header makes such a mix-up a compile error:
//
//   amounts   Bytes, Bits, Cells (integer counts), Ops (floating work)
//   rates     BitRate, ByteRate, OpRate (per-second doubles)
//
// Rules (enforced by explicit constructors and the closed operator set;
// tests/units_compile_fail/ proves each forbidden mixing does not compile):
//
//   Bytes   -> Bits      only via the named Bytes::to_bits()
//   ByteRate<-> BitRate  only via to_bit_rate() / to_byte_rate()
//   Bytes / ByteRate     -> SimTime        (serialization time, exact —
//   Bits  / BitRate      -> SimTime         both delegate to
//   transmission_time(Bytes, BitRate)       the raw transmission_time)
//   BitRate  * SimTime   -> Bits
//   ByteRate * SimTime   -> Bytes
//   Ops / OpRate         -> double seconds (summed before SimTime rounding,
//                           as the execution model requires)
//
// The wrappers are zero-overhead: same size as the underlying scalar,
// trivially copyable, all amount arithmetic constexpr.  Cell packing for
// AAL5 (aal5_cells(Bytes) -> Cells) lives with the other ATM knowledge in
// net/units.hpp.
#pragma once

#include <cmath>
#include <cstdint>
#include <compare>
#include <string>
#include <type_traits>

#include "units/time.hpp"

namespace gtw::units {

class Bits;

// ---------------------------------------------------------------------------
// Amounts
// ---------------------------------------------------------------------------

// A count of octets.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t n) : n_(n) {}
  static constexpr Bytes zero() { return Bytes{0}; }

  constexpr std::uint64_t count() const { return n_; }
  constexpr double kib() const { return static_cast<double>(n_) / 1024.0; }
  constexpr double mib() const {
    return static_cast<double>(n_) / (1024.0 * 1024.0);
  }
  // The only Bytes -> Bits conversion; there is deliberately no implicit
  // path and no operator that accepts both.
  constexpr Bits to_bits() const;

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.n_ + b.n_};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.n_ - b.n_};
  }
  constexpr Bytes& operator+=(Bytes o) {
    n_ += o.n_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    n_ -= o.n_;
    return *this;
  }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) {
    return Bytes{a.n_ * k};
  }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) { return a * k; }
  // Integer scalar division (window halving, chunking) — exactly
  // Bytes{count() / k}, so AIMD-style window math stays inside the type.
  friend constexpr Bytes operator/(Bytes a, std::uint64_t k) {
    return Bytes{a.n_ / k};
  }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;

  std::string to_string() const;  // e.g. "9180 B", "64.0 KiB"

 private:
  std::uint64_t n_ = 0;
};

// A count of bits (wire-level: BER math, serialization).
class Bits {
 public:
  constexpr Bits() = default;
  constexpr explicit Bits(std::uint64_t n) : n_(n) {}
  static constexpr Bits zero() { return Bits{0}; }

  constexpr std::uint64_t count() const { return n_; }

  friend constexpr Bits operator+(Bits a, Bits b) { return Bits{a.n_ + b.n_}; }
  friend constexpr Bits operator-(Bits a, Bits b) { return Bits{a.n_ - b.n_}; }
  constexpr Bits& operator+=(Bits o) {
    n_ += o.n_;
    return *this;
  }
  friend constexpr Bits operator*(Bits a, std::uint64_t k) {
    return Bits{a.n_ * k};
  }
  friend constexpr Bits operator*(std::uint64_t k, Bits a) { return a * k; }
  friend constexpr auto operator<=>(Bits, Bits) = default;

  std::string to_string() const;

 private:
  std::uint64_t n_ = 0;
};

constexpr Bits Bytes::to_bits() const { return Bits{n_ * 8u}; }

// A count of ATM cells (53-byte wire quanta; produced by net::aal5_cells).
class Cells {
 public:
  constexpr Cells() = default;
  constexpr explicit Cells(std::uint64_t n) : n_(n) {}
  static constexpr Cells zero() { return Cells{0}; }

  constexpr std::uint64_t count() const { return n_; }

  friend constexpr Cells operator+(Cells a, Cells b) {
    return Cells{a.n_ + b.n_};
  }
  friend constexpr Cells operator-(Cells a, Cells b) {
    return Cells{a.n_ - b.n_};
  }
  constexpr Cells& operator+=(Cells o) {
    n_ += o.n_;
    return *this;
  }
  friend constexpr Cells operator*(Cells a, std::uint64_t k) {
    return Cells{a.n_ * k};
  }
  friend constexpr Cells operator*(std::uint64_t k, Cells a) { return a * k; }
  friend constexpr auto operator<=>(Cells, Cells) = default;

  std::string to_string() const;

 private:
  std::uint64_t n_ = 0;
};

// An amount of abstract machine operations (the execution model's work
// currency; floating because estimates are products of model constants).
class Ops {
 public:
  constexpr Ops() = default;
  constexpr explicit Ops(double n) : n_(n) {}
  static constexpr Ops zero() { return Ops{0.0}; }

  constexpr double count() const { return n_; }

  friend constexpr Ops operator+(Ops a, Ops b) { return Ops{a.n_ + b.n_}; }
  friend constexpr Ops operator-(Ops a, Ops b) { return Ops{a.n_ - b.n_}; }
  constexpr Ops& operator+=(Ops o) {
    n_ += o.n_;
    return *this;
  }
  friend constexpr Ops operator*(Ops a, double k) { return Ops{a.n_ * k}; }
  friend constexpr Ops operator*(double k, Ops a) { return a * k; }
  constexpr Ops& operator*=(double k) {
    n_ *= k;
    return *this;
  }
  friend constexpr auto operator<=>(Ops, Ops) = default;

  std::string to_string() const;  // e.g. "1.35 Mop"

 private:
  double n_ = 0.0;
};

// ---------------------------------------------------------------------------
// Rates
// ---------------------------------------------------------------------------

class ByteRate;

// Bits per second: line and goodput rates (the paper's native unit).
class BitRate {
 public:
  constexpr BitRate() = default;
  constexpr explicit BitRate(double bits_per_s) : v_(bits_per_s) {}

  static constexpr BitRate bps(double v) { return BitRate{v}; }
  static constexpr BitRate kbps(double v) { return BitRate{v * 1e3}; }
  static constexpr BitRate mbps(double v) { return BitRate{v * 1e6}; }
  static constexpr BitRate gbps(double v) { return BitRate{v * 1e9}; }

  constexpr double bps() const { return v_; }
  constexpr double kbps() const { return v_ / 1e3; }
  constexpr double mbps() const { return v_ / 1e6; }
  constexpr double gbps() const { return v_ / 1e9; }

  // The only BitRate -> ByteRate conversion.
  constexpr ByteRate to_byte_rate() const;

  friend constexpr BitRate operator*(BitRate r, double k) {
    return BitRate{r.v_ * k};
  }
  friend constexpr BitRate operator*(double k, BitRate r) { return r * k; }
  friend constexpr BitRate operator/(BitRate r, double k) {
    return BitRate{r.v_ / k};
  }
  friend constexpr double operator/(BitRate a, BitRate b) {
    return a.v_ / b.v_;
  }
  friend constexpr BitRate operator+(BitRate a, BitRate b) {
    return BitRate{a.v_ + b.v_};
  }
  friend constexpr BitRate operator-(BitRate a, BitRate b) {
    return BitRate{a.v_ - b.v_};
  }
  friend constexpr auto operator<=>(BitRate, BitRate) = default;

  std::string to_string() const;  // e.g. "622.08 Mbit/s"

 private:
  double v_ = 0.0;  // bit per second
};

// Bytes per second: memory-system and interconnect bandwidths (exec).
class ByteRate {
 public:
  constexpr ByteRate() = default;
  constexpr explicit ByteRate(double bytes_per_s) : v_(bytes_per_s) {}

  static constexpr ByteRate per_sec(double v) { return ByteRate{v}; }

  constexpr double per_sec() const { return v_; }

  // The only ByteRate -> BitRate conversion.
  constexpr BitRate to_bit_rate() const { return BitRate{v_ * 8.0}; }

  friend constexpr ByteRate operator*(ByteRate r, double k) {
    return ByteRate{r.v_ * k};
  }
  friend constexpr ByteRate operator*(double k, ByteRate r) { return r * k; }
  friend constexpr ByteRate operator/(ByteRate r, double k) {
    return ByteRate{r.v_ / k};
  }
  friend constexpr double operator/(ByteRate a, ByteRate b) {
    return a.v_ / b.v_;
  }
  friend constexpr auto operator<=>(ByteRate, ByteRate) = default;

  std::string to_string() const;  // e.g. "300.0 MB/s"

 private:
  double v_ = 0.0;  // byte per second
};

constexpr ByteRate BitRate::to_byte_rate() const { return ByteRate{v_ / 8.0}; }

// Operations per second: effective sustained machine speed (exec).
class OpRate {
 public:
  constexpr OpRate() = default;
  constexpr explicit OpRate(double ops_per_s) : v_(ops_per_s) {}

  static constexpr OpRate per_sec(double v) { return OpRate{v}; }

  constexpr double per_sec() const { return v_; }
  constexpr double mops() const { return v_ / 1e6; }

  friend constexpr OpRate operator*(OpRate r, double k) {
    return OpRate{r.v_ * k};
  }
  friend constexpr OpRate operator*(double k, OpRate r) { return r * k; }
  friend constexpr auto operator<=>(OpRate, OpRate) = default;

  std::string to_string() const;  // e.g. "46.0 Mop/s"

 private:
  double v_ = 0.0;  // operations per second
};

// ---------------------------------------------------------------------------
// Cross-dimension arithmetic
// ---------------------------------------------------------------------------

// Exact serialization time of an amount at a rate, rounded up to the next
// picosecond so repeated sends never run ahead of the wire.  Delegates to
// the raw transmission_time so the arithmetic is bit-identical with the
// pre-typed code paths.
inline SimTime transmission_time(Bytes amount, BitRate rate) {
  return transmission_time(amount.count(), rate.bps());
}

inline SimTime operator/(Bytes amount, ByteRate rate) {
  return transmission_time(amount, rate.to_bit_rate());
}

inline SimTime operator/(Bits amount, BitRate rate) {
  // bits == bytes * 8 exactly in IEEE double (scaling by a power of two),
  // so this matches transmission_time(Bytes, BitRate) for whole bytes.
  const double ps = static_cast<double>(amount.count()) * 1e12 / rate.bps();
  return SimTime::picoseconds(static_cast<std::int64_t>(std::ceil(ps)));
}

// Amount accumulated over a time span (rounded to the nearest whole unit).
inline Bits operator*(BitRate rate, SimTime t) {
  return Bits{static_cast<std::uint64_t>(rate.bps() * t.sec() + 0.5)};
}
inline Bits operator*(SimTime t, BitRate rate) { return rate * t; }

inline Bytes operator*(ByteRate rate, SimTime t) {
  return Bytes{static_cast<std::uint64_t>(rate.per_sec() * t.sec() + 0.5)};
}
inline Bytes operator*(SimTime t, ByteRate rate) { return rate * t; }

// Work over speed: seconds as a double, NOT a SimTime — the execution model
// sums several of these before rounding once (exec::time_on), and rounding
// each term separately would change Table-1 outputs.
constexpr double operator/(Ops work, OpRate rate) {
  return work.count() / rate.per_sec();
}

// An amount per period (e.g. a CBR frame each cadence tick).
inline BitRate per(Bits amount, SimTime period) {
  return BitRate::bps(static_cast<double>(amount.count()) / period.sec());
}

// ---------------------------------------------------------------------------
// Zero-overhead guarantees
// ---------------------------------------------------------------------------

static_assert(sizeof(Bytes) == sizeof(std::uint64_t));
static_assert(sizeof(Bits) == sizeof(std::uint64_t));
static_assert(sizeof(Cells) == sizeof(std::uint64_t));
static_assert(sizeof(Ops) == sizeof(double));
static_assert(sizeof(BitRate) == sizeof(double));
static_assert(sizeof(ByteRate) == sizeof(double));
static_assert(sizeof(OpRate) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Bytes> &&
              std::is_trivially_copyable_v<Bits> &&
              std::is_trivially_copyable_v<Cells> &&
              std::is_trivially_copyable_v<Ops> &&
              std::is_trivially_copyable_v<BitRate> &&
              std::is_trivially_copyable_v<ByteRate> &&
              std::is_trivially_copyable_v<OpRate>);

}  // namespace gtw::units
