#include "units/units.hpp"

#include <cstdio>

namespace gtw::units {

namespace {

std::string fmt(const char* pattern, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, pattern, v);
  return buf;
}

}  // namespace

std::string Bytes::to_string() const {
  if (n_ >= 1024u * 1024u) return fmt("%.1f MiB", mib());
  if (n_ >= 1024u) return fmt("%.1f KiB", kib());
  return fmt("%.0f B", static_cast<double>(n_));
}

std::string Bits::to_string() const {
  const double v = static_cast<double>(n_);
  if (v >= 1e9) return fmt("%.2f Gbit", v / 1e9);
  if (v >= 1e6) return fmt("%.2f Mbit", v / 1e6);
  if (v >= 1e3) return fmt("%.2f kbit", v / 1e3);
  return fmt("%.0f bit", v);
}

std::string Cells::to_string() const {
  return fmt("%.0f cells", static_cast<double>(n_));
}

std::string Ops::to_string() const {
  if (n_ >= 1e9) return fmt("%.2f Gop", n_ / 1e9);
  if (n_ >= 1e6) return fmt("%.2f Mop", n_ / 1e6);
  return fmt("%.0f op", n_);
}

std::string BitRate::to_string() const {
  if (v_ >= 1e9) return fmt("%.2f Gbit/s", gbps());
  if (v_ >= 1e6) return fmt("%.2f Mbit/s", mbps());
  if (v_ >= 1e3) return fmt("%.2f kbit/s", kbps());
  return fmt("%.0f bit/s", v_);
}

std::string ByteRate::to_string() const {
  if (v_ >= 1e9) return fmt("%.2f GB/s", v_ / 1e9);
  if (v_ >= 1e6) return fmt("%.2f MB/s", v_ / 1e6);
  return fmt("%.0f B/s", v_);
}

std::string OpRate::to_string() const {
  if (v_ >= 1e9) return fmt("%.2f Gop/s", v_ / 1e9);
  if (v_ >= 1e6) return fmt("%.2f Mop/s", v_ / 1e6);
  return fmt("%.0f op/s", v_);
}

}  // namespace gtw::units
