// EPI k-space acquisition and reconstruction — what happens on the
// scanner's control workstation in the ~1.5 s between the scan and the
// RT-server (paper section 4, step 1: "the raw images are transferred from
// the control-workstation of the scanner", which implies the
// reconstruction already happened there).
//
// An EPI readout samples the 2-D Fourier transform of each slice; receiver
// noise is added *in k-space* (physically correct: it enters through the
// coil), and the image is recovered by inverse FFT.  Slice dimensions must
// be powers of two (64x64 in the paper).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "des/random.hpp"
#include "fire/volume.hpp"
#include "linalg/fft.hpp"

namespace gtw::scanner {

// Forward-acquire one slice: FFT of the slice image plus complex Gaussian
// receiver noise of standard deviation `noise_sigma` (in k-space units
// normalised so that sigma maps ~1:1 to image-domain noise).
std::vector<linalg::Complex> acquire_kspace_slice(const fire::VolumeF& vol,
                                                  int z, double noise_sigma,
                                                  des::Rng& rng);

// Reconstruct a slice image from its k-space samples (inverse FFT,
// magnitude image, as the Siemens reconstruction produced).
void reconstruct_slice(const std::vector<linalg::Complex>& kspace, int nx,
                       int ny, fire::VolumeF& out, int z);

// Whole-volume convenience: acquire every slice and reconstruct; the
// round trip is the identity up to receiver noise.
fire::VolumeF acquire_and_reconstruct(const fire::VolumeF& vol,
                                      double noise_sigma, des::Rng& rng);

// Bytes of raw k-space for one volume (complex samples, 2 x 4-byte floats
// as the scanner stored them) — what would cross the scanner link if raw
// data were shipped instead of images, the "order of magnitude beyond"
// data-rate future the paper warns about.
std::uint64_t kspace_bytes(const fire::Dims& dims);

}  // namespace gtw::scanner
