#include "scanner/phantom.hpp"

#include "scanner/kspace.hpp"

#include <algorithm>
#include <cmath>

namespace gtw::scanner {

namespace {

// Normalised ellipsoid radius of (x,y,z) w.r.t. semi-axes (ax,ay,az) around
// the volume centre.
double ellipse_r(const fire::Dims& d, double x, double y, double z, double ax,
                 double ay, double az) {
  const double cx = (d.nx - 1) / 2.0, cy = (d.ny - 1) / 2.0,
               cz = (d.nz - 1) / 2.0;
  const double ux = (x - cx) / (ax * d.nx / 2.0);
  const double uy = (y - cy) / (ay * d.ny / 2.0);
  const double uz = (z - cz) / (az * d.nz / 2.0);
  return std::sqrt(ux * ux + uy * uy + uz * uz);
}

}  // namespace

fire::VolumeF make_head_phantom(fire::Dims dims) {
  fire::VolumeF v(dims);
  for (int z = 0; z < dims.nz; ++z) {
    for (int y = 0; y < dims.ny; ++y) {
      for (int x = 0; x < dims.nx; ++x) {
        const double r_head = ellipse_r(dims, x, y, z, 0.90, 0.95, 0.90);
        const double r_brain = ellipse_r(dims, x, y, z, 0.75, 0.80, 0.75);
        const double r_vent =
            ellipse_r(dims, x, y - dims.ny * 0.05, z, 0.18, 0.25, 0.30);
        double val = 0.0;  // air
        if (r_head < 1.0) val = 350.0;                      // scalp/skull
        if (r_brain < 1.0) {
          // Brain tissue with smooth intensity variation (grey/white-ish).
          val = 700.0 +
                120.0 * std::sin(0.35 * x) * std::cos(0.3 * y) *
                    std::cos(0.5 * z) +
                80.0 * (1.0 - r_brain);
        }
        if (r_vent < 1.0) val = 180.0;                      // CSF, dark on EPI
        v.at(x, y, z) = static_cast<float>(val);
      }
    }
  }
  return v;
}

fire::VolumeF make_anatomical(fire::Dims dims) {
  // Same geometry, T1-like contrast (bright white matter, mid grey matter).
  fire::VolumeF v(dims);
  for (int z = 0; z < dims.nz; ++z) {
    for (int y = 0; y < dims.ny; ++y) {
      for (int x = 0; x < dims.nx; ++x) {
        const double r_head = ellipse_r(dims, x, y, z, 0.90, 0.95, 0.90);
        const double r_brain = ellipse_r(dims, x, y, z, 0.75, 0.80, 0.75);
        const double r_vent =
            ellipse_r(dims, x, y - dims.ny * 0.05, z, 0.18, 0.25, 0.30);
        double val = 0.0;
        if (r_head < 1.0) val = 600.0;  // skull bright on T1
        if (r_brain < 1.0)
          val = 450.0 + 250.0 * std::exp(-3.0 * r_brain * r_brain);
        if (r_vent < 1.0) val = 100.0;
        v.at(x, y, z) = static_cast<float>(val);
      }
    }
  }
  return v;
}

FmriSeriesGenerator::FmriSeriesGenerator(FmriConfig cfg)
    : cfg_(cfg), baseline_(make_head_phantom(cfg.dims)),
      amplitude_(cfg.dims), rng_(cfg.seed), motion_rng_(cfg.seed ^ 0xabcdef) {
  // Per-voxel activation amplitude (baseline-scaled) inside the regions.
  for (int z = 0; z < cfg_.dims.nz; ++z) {
    for (int y = 0; y < cfg_.dims.ny; ++y) {
      for (int x = 0; x < cfg_.dims.nx; ++x) {
        double amp = 0.0;
        for (const ActivationRegion& reg : cfg_.regions) {
          const double dx = x - reg.cx, dy = y - reg.cy, dz = z - reg.cz;
          const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
          if (r < reg.radius)
            amp = std::max(amp, reg.amplitude * (1.0 - r / reg.radius));
        }
        amplitude_.at(x, y, z) =
            static_cast<float>(amp * baseline_.at(x, y, z));
      }
    }
  }
  // Ground-truth BOLD response: stimulus (x) unit-sum HRF, in [0, 1].
  const std::vector<double> s = cfg_.stimulus.series(cfg_.expected_scans);
  const std::vector<double> h = fire::hrf_kernel(cfg_.hrf, cfg_.tr_s);
  response_.assign(static_cast<std::size_t>(cfg_.expected_scans), 0.0);
  for (int i = 0; i < cfg_.expected_scans; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < h.size() && static_cast<int>(j) <= i; ++j)
      acc += s[static_cast<std::size_t>(i) - j] * h[j];
    response_[static_cast<std::size_t>(i)] = acc;
  }
}

fire::RigidTransform FmriSeriesGenerator::motion_at(int t) const {
  // Deterministic per-scan motion independent of acquisition order.
  des::Rng r(cfg_.seed * 0x9e3779b9ULL + static_cast<std::uint64_t>(t));
  fire::RigidTransform m;
  m.tx = cfg_.motion.drift_per_scan * t + r.normal(0.0, cfg_.motion.jitter);
  m.ty = r.normal(0.0, cfg_.motion.jitter);
  m.tz = 0.5 * cfg_.motion.drift_per_scan * t +
         r.normal(0.0, 0.5 * cfg_.motion.jitter);
  m.rx = r.normal(0.0, cfg_.motion.rot_jitter);
  m.ry = r.normal(0.0, cfg_.motion.rot_jitter);
  m.rz = r.normal(0.0, cfg_.motion.rot_jitter);
  return m;
}

fire::VolumeF FmriSeriesGenerator::acquire(int t) {
  const double resp =
      t < cfg_.expected_scans
          ? response_[static_cast<std::size_t>(t)]
          : response_.back();
  const double u = static_cast<double>(t) /
                   std::max(1, cfg_.expected_scans - 1);
  const double drift = cfg_.drift_amplitude * u +
                       cfg_.cosine_drift_amplitude * std::cos(M_PI * u);

  fire::VolumeF img(cfg_.dims);
  const std::size_t n = img.size();
  for (std::size_t i = 0; i < n; ++i) {
    double val = baseline_[i] + amplitude_[i] * resp;
    if (baseline_[i] > 0.0f) val += drift;
    img[i] = static_cast<float>(val);
  }

  // Rigid head motion, if any.
  const fire::RigidTransform m = motion_at(t);
  if (m.max_abs() > 1e-9) img = fire::resample(img, m);

  if (cfg_.kspace_acquisition) {
    // Receiver noise enters in k-space; the reconstruction hands back a
    // magnitude image, as the Siemens control workstation did.
    return acquire_and_reconstruct(img, cfg_.noise_sigma, rng_);
  }

  // Image-domain shortcut: thermal noise added per voxel.
  for (std::size_t i = 0; i < n; ++i)
    img[i] += static_cast<float>(rng_.normal(0.0, cfg_.noise_sigma));
  return img;
}

fire::Volume<std::uint8_t> FmriSeriesGenerator::activation_mask() const {
  fire::Volume<std::uint8_t> mask(cfg_.dims);
  for (std::size_t i = 0; i < mask.size(); ++i)
    mask[i] = amplitude_[i] > 0.0f ? 1 : 0;
  return mask;
}

}  // namespace gtw::scanner
