// Synthetic head phantom and fMRI time-series generator — the stand-in for
// the paper's 1.5 T Siemens Vision MRI scanner and human subject (see
// DESIGN.md substitution table).  The generator produces EPI volumes whose
// activated voxels follow boxcar-stimulus (x) hemodynamic-response time
// courses (BOLD effect, Ogawa et al. 1990), corrupted by thermal noise,
// slow baseline drift and rigid head motion, with full ground truth exposed
// for testing.
#pragma once

#include <cstdint>
#include <vector>

#include "des/random.hpp"
#include "fire/reference.hpp"
#include "fire/rigid.hpp"
#include "fire/volume.hpp"

namespace gtw::scanner {

// Ellipsoidal head with skull shell, brain tissue (smoothly varying) and
// dark ventricles; intensities roughly EPI-like in [0, 1000].
fire::VolumeF make_head_phantom(fire::Dims dims);

// High-resolution anatomical volume of the same geometry (paper: 256x256x128
// acquired before the functional measurement, merged on the Onyx 2).
fire::VolumeF make_anatomical(fire::Dims dims);

struct ActivationRegion {
  double cx, cy, cz;      // centre, voxel coordinates
  double radius;          // voxels
  double amplitude = 0.03;  // BOLD amplitude, fraction of baseline
};

struct MotionModel {
  double drift_per_scan = 0.0;   // slow translation drift, voxels/scan
  double jitter = 0.0;           // random per-scan translation sigma, voxels
  double rot_jitter = 0.0;       // random rotation sigma, radians
};

struct FmriConfig {
  fire::Dims dims{64, 64, 16};
  double tr_s = 2.0;
  fire::StimulusDesign stimulus;
  fire::HrfParams hrf;                     // ground-truth response
  std::vector<ActivationRegion> regions;
  double noise_sigma = 4.0;                // additive Gaussian, image units
  double drift_amplitude = 6.0;            // linear drift over the run
  double cosine_drift_amplitude = 4.0;     // slow cosine drift
  int expected_scans = 128;
  MotionModel motion;
  std::uint64_t seed = 12345;
  // When set, each scan is acquired through the EPI k-space chain
  // (scanner/kspace.hpp): receiver noise enters in k-space and the image
  // is reconstructed by inverse FFT, as on the real control workstation.
  // Requires power-of-two in-plane dimensions.
  bool kspace_acquisition = false;
};

class FmriSeriesGenerator {
 public:
  explicit FmriSeriesGenerator(FmriConfig cfg);

  // Produce the scan at index `t` (call with consecutive t from 0).
  fire::VolumeF acquire(int t);

  // Ground truth for verification.
  const fire::VolumeF& baseline() const { return baseline_; }
  const std::vector<double>& true_response() const { return response_; }
  fire::Volume<std::uint8_t> activation_mask() const;
  fire::RigidTransform motion_at(int t) const;
  const FmriConfig& config() const { return cfg_; }

  // Bytes of one raw image as the scanner front-end emits it (16-bit
  // voxels, as the Siemens reconstruction produced).
  std::uint64_t image_bytes() const { return cfg_.dims.voxels() * 2; }

 private:
  FmriConfig cfg_;
  fire::VolumeF baseline_;
  fire::VolumeF amplitude_;         // per-voxel activation amplitude x baseline
  std::vector<double> response_;    // normalised BOLD time course
  des::Rng rng_;
  mutable des::Rng motion_rng_;
};

}  // namespace gtw::scanner
