#include "scanner/kspace.hpp"

#include <cmath>
#include <stdexcept>

namespace gtw::scanner {

std::vector<linalg::Complex> acquire_kspace_slice(const fire::VolumeF& vol,
                                                  int z, double noise_sigma,
                                                  des::Rng& rng) {
  const fire::Dims d = vol.dims();
  if (!linalg::is_power_of_two(static_cast<std::size_t>(d.nx)) ||
      !linalg::is_power_of_two(static_cast<std::size_t>(d.ny)))
    throw std::invalid_argument("acquire_kspace_slice: dims not 2^n");

  std::vector<linalg::Complex> k(static_cast<std::size_t>(d.nx) *
                                 static_cast<std::size_t>(d.ny));
  for (int y = 0; y < d.ny; ++y)
    for (int x = 0; x < d.nx; ++x)
      k[static_cast<std::size_t>(y) * d.nx + x] =
          linalg::Complex(vol.at(x, y, z), 0.0);
  linalg::fft2d(k, d.nx, d.ny, /*inverse=*/false);

  // Complex receiver noise; scaled by sqrt(N) so that after the 1/N
  // inverse transform each image-domain noise component has standard
  // deviation noise_sigma.
  const double scale =
      noise_sigma * std::sqrt(static_cast<double>(d.nx) *
                              static_cast<double>(d.ny));
  for (auto& s : k)
    s += linalg::Complex(rng.normal(0.0, scale), rng.normal(0.0, scale));
  return k;
}

void reconstruct_slice(const std::vector<linalg::Complex>& kspace, int nx,
                       int ny, fire::VolumeF& out, int z) {
  std::vector<linalg::Complex> img = kspace;
  linalg::fft2d(img, nx, ny, /*inverse=*/true);
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x)
      out.at(x, y, z) = static_cast<float>(
          std::abs(img[static_cast<std::size_t>(y) * nx + x]));
}

fire::VolumeF acquire_and_reconstruct(const fire::VolumeF& vol,
                                      double noise_sigma, des::Rng& rng) {
  const fire::Dims d = vol.dims();
  fire::VolumeF out(d);
  for (int z = 0; z < d.nz; ++z) {
    const auto k = acquire_kspace_slice(vol, z, noise_sigma, rng);
    reconstruct_slice(k, d.nx, d.ny, out, z);
  }
  return out;
}

std::uint64_t kspace_bytes(const fire::Dims& dims) {
  return dims.voxels() * 2u * 4u;
}

}  // namespace gtw::scanner
