#!/usr/bin/env python3
"""Structural validator for the Chrome trace-event JSON the obs exporters
emit (and chrome://tracing / Perfetto load).

Checks, per file:
  - the file parses as JSON: an object with a "traceEvents" array
  - every event is an object with a known "ph" and integer "pid"
  - duration events ("B"/"E") carry name/tid/ts and balance per (tid, name)
  - flow arrows ("s"/"f") carry id/tid/ts and every finish has a start
  - instant events ("i") carry a valid scope, counters ("C") a numeric value
  - every "ts" is a non-negative JSON number

This is intentionally a format check, not a semantic one: the byte-level
determinism of the same files is covered by tools/determinism_gate.py.
Standard library only.  Exit status: 0 all files valid, 1 otherwise.
"""

from __future__ import annotations

import json
import numbers
import sys

KNOWN_PHASES = {"M", "B", "E", "s", "f", "i", "C"}


def check_event(ev: object, idx: int, errors: list[str]) -> dict | None:
    def err(msg: str) -> None:
        errors.append(f"event {idx}: {msg}")

    if not isinstance(ev, dict):
        err(f"not an object: {ev!r}")
        return None
    ph = ev.get("ph")
    if ph not in KNOWN_PHASES:
        err(f"unknown ph {ph!r}")
        return None
    if not isinstance(ev.get("pid"), int):
        err(f"ph {ph}: missing integer pid")

    if ph != "M":
        ts = ev.get("ts")
        if not isinstance(ts, numbers.Real) or isinstance(ts, bool) or ts < 0:
            err(f"ph {ph}: ts must be a non-negative number, got {ts!r}")

    if ph in ("M", "B", "E", "i", "C") and not isinstance(ev.get("name"), str):
        err(f"ph {ph}: missing string name")
    if ph in ("B", "E", "s", "f") and not isinstance(ev.get("tid"), int):
        err(f"ph {ph}: missing integer tid")
    if ph in ("s", "f") and not isinstance(ev.get("id"), int):
        err(f"ph {ph}: missing integer flow id")
    if ph == "i" and ev.get("s") not in ("g", "p", "t"):
        err(f"instant event: scope {ev.get('s')!r} not one of g/p/t")
    if ph == "C":
        args = ev.get("args")
        if not isinstance(args, dict) or not any(
                isinstance(v, numbers.Real) and not isinstance(v, bool)
                for v in args.values()):
            err("counter event: args must hold a numeric value")
    return ev


def validate(path: str) -> list[str]:
    errors: list[str] = []
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"unreadable or invalid JSON: {e}"]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        return ["top level must be an object with a traceEvents array"]

    opened: dict[tuple[int, str], int] = {}  # (tid, name) -> open B count
    flows_started: set[int] = set()
    counts: dict[str, int] = {}
    for idx, raw in enumerate(doc["traceEvents"]):
        ev = check_event(raw, idx, errors)
        if ev is None:
            continue
        ph = ev["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        key = (ev.get("tid"), ev.get("name"))
        if ph == "B":
            opened[key] = opened.get(key, 0) + 1
        elif ph == "E":
            if opened.get(key, 0) <= 0:
                errors.append(f"event {idx}: E without matching B for {key}")
            else:
                opened[key] -= 1
        elif ph == "s":
            flows_started.add(ev["id"])
        elif ph == "f":
            if ev["id"] not in flows_started:
                errors.append(
                    f"event {idx}: flow finish id {ev['id']} never started")

    for key, n in sorted(opened.items()):
        if n != 0:
            errors.append(f"unbalanced duration events for {key}: {n} open")
    if not errors:
        summary = " ".join(f"{ph}={counts[ph]}" for ph in sorted(counts))
        print(f"validate-chrome-trace: ok: {path} "
              f"({len(doc['traceEvents'])} events: {summary})")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: validate_chrome_trace.py trace.json [trace.json ...]",
              file=sys.stderr)
        return 1
    status = 0
    for path in argv:
        for e in validate(path):
            print(f"validate-chrome-trace: FAIL: {path}: {e}")
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
