#!/usr/bin/env python3
"""Structural validator for the Chrome trace-event JSON the obs exporters
emit (and chrome://tracing / Perfetto load).

Checks, per file:
  - the file parses as JSON: an object with a "traceEvents" array
  - every event is an object with a known "ph" and integer "pid"
  - duration events ("B"/"E") carry name/tid/ts and balance per (tid, name)
  - flow arrows ("s"/"f") carry id/tid/ts and every finish has a start
  - instant events ("i") carry a valid scope, counters ("C") a numeric value
  - every "ts" is a non-negative JSON number

Files named *.spans.json are validated as causal-span artifacts instead
(the line-oriented format obs::SpanTracer::write_json emits, DESIGN.md
section 13): a {"gtw_spans": 1} header, trace and span lines with exact
integer-picosecond stamps and dense 1-based span ids, and a footer whose
counts must match the lines actually present — the same truncation
detection gtw-trace's loader performs, kept in sync here so CI catches a
bad artifact even without running the tool.

This is intentionally a format check, not a semantic one: the byte-level
determinism of the same files is covered by tools/determinism_gate.py.
Standard library only.  Exit status: 0 all files valid, 1 otherwise.
"""

from __future__ import annotations

import json
import numbers
import sys

KNOWN_PHASES = {"M", "B", "E", "X", "s", "f", "i", "C"}


def check_event(ev: object, idx: int, errors: list[str]) -> dict | None:
    def err(msg: str) -> None:
        errors.append(f"event {idx}: {msg}")

    if not isinstance(ev, dict):
        err(f"not an object: {ev!r}")
        return None
    ph = ev.get("ph")
    if ph not in KNOWN_PHASES:
        err(f"unknown ph {ph!r}")
        return None
    if not isinstance(ev.get("pid"), int):
        err(f"ph {ph}: missing integer pid")

    if ph != "M":
        ts = ev.get("ts")
        if not isinstance(ts, numbers.Real) or isinstance(ts, bool) or ts < 0:
            err(f"ph {ph}: ts must be a non-negative number, got {ts!r}")

    if ph in ("M", "B", "E", "X", "i", "C") \
            and not isinstance(ev.get("name"), str):
        err(f"ph {ph}: missing string name")
    if ph in ("B", "E", "X", "s", "f") and not isinstance(ev.get("tid"), int):
        err(f"ph {ph}: missing integer tid")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, numbers.Real) or isinstance(dur, bool) \
                or dur < 0:
            err(f"complete event: dur must be a non-negative number, "
                f"got {dur!r}")
    if ph in ("s", "f") and not isinstance(ev.get("id"), int):
        err(f"ph {ph}: missing integer flow id")
    if ph == "i" and ev.get("s") not in ("g", "p", "t"):
        err(f"instant event: scope {ev.get('s')!r} not one of g/p/t")
    if ph == "C":
        args = ev.get("args")
        if not isinstance(args, dict) or not any(
                isinstance(v, numbers.Real) and not isinstance(v, bool)
                for v in args.values()):
            err("counter event: args must hold a numeric value")
    return ev


SPAN_TRACE_STATUS = ("open", "closed", "aborted")
SPAN_STATUS = ("ok", "aborted", "open")


def validate_spans(path: str) -> list[str]:
    """Causal-span artifact (line-oriented, see obs::SpanTracer::write_json):
    header, trace lines, span lines (dense 1-based ids, integer-picosecond
    stamps), and a footer whose counts must match what is present."""
    errors: list[str] = []
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [f"unreadable: {e}"]
    if not lines:
        return ["empty file: missing {\"gtw_spans\"} header"]

    def parse(idx: int) -> dict | None:
        try:
            obj = json.loads(lines[idx])
        except ValueError as e:
            errors.append(f"line {idx + 1}: invalid JSON: {e}")
            return None
        if not isinstance(obj, dict):
            errors.append(f"line {idx + 1}: not an object")
            return None
        return obj

    header = parse(0)
    if header is None:
        return errors
    if header.get("gtw_spans") != 1 or not isinstance(header.get("label"),
                                                      str):
        return [f"line 1: bad header {lines[0]!r}: expected "
                "{\"gtw_spans\": 1, \"label\": ...}"]

    traces = spans = open_spans = 0
    footer = None
    for idx in range(1, len(lines)):
        obj = parse(idx)
        if obj is None:
            continue

        def err(msg: str) -> None:
            errors.append(f"line {idx + 1}: {msg}")

        if "spans_total" in obj:
            footer = obj
            if idx != len(lines) - 1:
                err("footer is not the last line")
            break
        if "span" in obj:
            spans += 1
            if obj.get("span") != spans:
                err(f"span id {obj.get('span')!r}: ids must be dense and "
                    f"1-based (expected {spans})")
            if obj.get("status") not in SPAN_STATUS:
                err(f"span status {obj.get('status')!r} not one of "
                    f"{'/'.join(SPAN_STATUS)}")
            if obj.get("status") == "open":
                open_spans += 1
            for k in ("trace", "parent", "begin_ps", "end_ps"):
                v = obj.get(k)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    err(f"span field {k} must be a non-negative integer, "
                        f"got {v!r}")
            for k in ("phase", "layer", "name"):
                if not isinstance(obj.get(k), str):
                    err(f"span field {k} must be a string")
        elif "trace" in obj:
            traces += 1
            if obj.get("status") not in SPAN_TRACE_STATUS:
                err(f"trace status {obj.get('status')!r} not one of "
                    f"{'/'.join(SPAN_TRACE_STATUS)}")
            if not isinstance(obj.get("root"), int):
                err("trace line missing integer root span id")
            if not isinstance(obj.get("origin"), str):
                err("trace line missing string origin")
        else:
            err(f"neither trace, span nor footer line: {lines[idx]!r}")

    if footer is None:
        errors.append("truncated: no {\"spans_total\"} footer")
    else:
        for k, have in (("spans_total", spans), ("traces_total", traces),
                        ("open_spans", open_spans)):
            if footer.get(k) != have:
                errors.append(f"footer {k}={footer.get(k)!r} but file has "
                              f"{have}")
    if not errors:
        print(f"validate-chrome-trace: ok: {path} (spans artifact: "
              f"{traces} trace(s), {spans} span(s), {open_spans} open)")
    return errors


def validate(path: str) -> list[str]:
    if path.endswith(".spans.json"):
        return validate_spans(path)
    errors: list[str] = []
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"unreadable or invalid JSON: {e}"]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        return ["top level must be an object with a traceEvents array"]

    opened: dict[tuple[int, str], int] = {}  # (tid, name) -> open B count
    flows_started: set[int] = set()
    counts: dict[str, int] = {}
    for idx, raw in enumerate(doc["traceEvents"]):
        ev = check_event(raw, idx, errors)
        if ev is None:
            continue
        ph = ev["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        key = (ev.get("tid"), ev.get("name"))
        if ph == "B":
            opened[key] = opened.get(key, 0) + 1
        elif ph == "E":
            if opened.get(key, 0) <= 0:
                errors.append(f"event {idx}: E without matching B for {key}")
            else:
                opened[key] -= 1
        elif ph == "s":
            flows_started.add(ev["id"])
        elif ph == "f":
            if ev["id"] not in flows_started:
                errors.append(
                    f"event {idx}: flow finish id {ev['id']} never started")

    for key, n in sorted(opened.items()):
        if n != 0:
            errors.append(f"unbalanced duration events for {key}: {n} open")
    if not errors:
        summary = " ".join(f"{ph}={counts[ph]}" for ph in sorted(counts))
        print(f"validate-chrome-trace: ok: {path} "
              f"({len(doc['traceEvents'])} events: {summary})")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: validate_chrome_trace.py trace.json [trace.json ...]",
              file=sys.stderr)
        return 1
    status = 0
    for path in argv:
        for e in validate(path):
            print(f"validate-chrome-trace: FAIL: {path}: {e}")
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
