#!/usr/bin/env python3
"""Double-run determinism gate.

Runs a seeded benchmark (or any artifact-writing command) twice, each time
in a fresh empty directory, and fails unless every artifact both runs
produced is byte-identical.  This is the runtime complement to the static
rules in tools/lint/gtw_lint.py: gtw-lint bans the constructs that *cause*
divergence, this gate proves the absence of divergence end to end — same
binary, same seed, same bytes out.

Benchmark binaries in this repo write their reproduction artifacts
(BENCH_*.json) from main() before google-benchmark takes over, so passing
a never-matching --benchmark_filter replays the deterministic simulation
without timing noise.

Exit status: 0 byte-identical, 1 divergence (or no artifacts), 2 usage or
subprocess failure.  Standard library only.
"""

from __future__ import annotations

import argparse
import glob
import hashlib
import os
import re
import subprocess
import sys
import tempfile

# Matches no benchmark name, so only the deterministic artifact-writing
# part of the binary runs.
NO_BENCHMARKS = "--benchmark_filter=$^"


def run_once(cmd: list[str], workdir: str,
             patterns: list[str]) -> dict[str, bytes]:
    proc = subprocess.run(cmd, cwd=workdir, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode(errors="replace"))
        raise RuntimeError(
            f"command exited {proc.returncode}: {' '.join(cmd)}")
    artifacts: dict[str, bytes] = {}
    for pattern in patterns:
        for path in sorted(glob.glob(os.path.join(workdir, pattern))):
            with open(path, "rb") as f:
                artifacts[os.path.basename(path)] = f.read()
    return artifacts


def first_difference(a: bytes, b: bytes) -> int:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    return min(len(a), len(b))


def hex_context(data: bytes, off: int, span: int = 16) -> str:
    """One line of hex+printable context around `off`, caret under the
    diverging byte, so a CI log pinpoints the mismatch without local
    reproduction."""
    lo = max(0, off - span)
    window = data[lo:off + span]
    hexes = " ".join(f"{b:02x}" for b in window)
    chars = "".join(chr(b) if 0x20 <= b < 0x7f else "." for b in window)
    caret = " " * (3 * (off - lo)) + "^^"
    return (f"    bytes {lo}..{lo + len(window)}: {hexes}\n"
            f"    {' ' * len('bytes ..: ')}{caret}\n"
            f"    printable: {chars!r}")


# "hash_checkpoints": [{"t_s": ..., "hash": "0x..."}] arrays embedded in an
# artifact (see bench/des_speed.cpp).  Parsed with a tolerant regex rather
# than full JSON so a *corrupt* diverging artifact still yields its
# checkpoint trail.
CHECKPOINT_ARRAY_RE = re.compile(
    rb"\"hash_checkpoints\"\s*:\s*\[(.*?)\]", re.DOTALL)
CHECKPOINT_RE = re.compile(
    rb"\{\s*\"t_s\"\s*:\s*([-0-9.eE+]+)\s*,\s*\"hash\"\s*:\s*\"(0x[0-9a-f]+)\"\s*\}")


def extract_checkpoints(data: bytes) -> list[list[tuple[float, str]]]:
    """All hash-checkpoint trails in an artifact, in order of appearance."""
    trails = []
    for m in CHECKPOINT_ARRAY_RE.finditer(data):
        trails.append([(float(t), h.decode())
                       for t, h in CHECKPOINT_RE.findall(m.group(1))])
    return trails


def localize_divergence(a: bytes, b: bytes) -> str | None:
    """Compare embedded stream-hash checkpoint trails between two runs and
    name the simulated-time window where they first disagree.  Returns a
    report line, or None if the artifact carries no checkpoints."""
    ta, tb = extract_checkpoints(a), extract_checkpoints(b)
    if not ta or not tb:
        return None
    for trail_idx, (ca, cb) in enumerate(zip(ta, tb)):
        prev_t = 0.0
        for (t1, h1), (t2, h2) in zip(ca, cb):
            if t1 != t2 or h1 != h2:
                return (f"  stream-hash checkpoints (trail {trail_idx}): "
                        f"runs agree up to t={prev_t:.6g}s, first diverge "
                        f"by t={max(t1, t2):.6g}s "
                        f"({h1} vs {h2}) — the nondeterministic event lies "
                        f"in that simulated-time window")
            prev_t = t1
        if len(ca) != len(cb):
            return (f"  stream-hash checkpoints (trail {trail_idx}): "
                    f"identical through t={prev_t:.6g}s but one run "
                    f"recorded {len(ca)} checkpoints, the other {len(cb)} — "
                    f"the runs drained at different simulated times")
    return ("  stream-hash checkpoints: all identical — the divergence is "
            "outside the simulated event stream (formatting or metadata)")


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="determinism_gate", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench", required=True,
                    help="benchmark binary to replay twice")
    ap.add_argument("--artifact-glob", action="append", default=None,
                    dest="artifact_globs",
                    help="artifacts to compare, repeatable (default: "
                         "BENCH_*.json and OBS_*.json)")
    ap.add_argument("--arg", action="append", default=None, dest="args",
                    help="extra argument to pass instead of the default "
                         "never-matching --benchmark_filter (repeatable)")
    ap.add_argument("--expect", action="append", default=[],
                    dest="expected",
                    help="artifact filename that MUST be produced "
                         "(repeatable); guards against a bench silently "
                         "dropping an output while others keep the gate "
                         "non-vacuous")
    args = ap.parse_args(argv)

    cmd = [os.path.abspath(args.bench)]
    cmd += args.args if args.args is not None else [NO_BENCHMARKS]
    globs = (args.artifact_globs if args.artifact_globs is not None
             else ["BENCH_*.json", "OBS_*.json"])

    try:
        with tempfile.TemporaryDirectory(prefix="det_run1_") as d1, \
                tempfile.TemporaryDirectory(prefix="det_run2_") as d2:
            run1 = run_once(cmd, d1, globs)
            run2 = run_once(cmd, d2, globs)
    except (RuntimeError, OSError) as e:
        print(f"determinism-gate: ERROR: {e}", file=sys.stderr)
        return 2

    if not run1:
        print(f"determinism-gate: ERROR: no artifacts matching "
              f"{globs} were produced — the gate would "
              f"vacuously pass", file=sys.stderr)
        return 1

    missing = [name for name in args.expected if name not in run1]
    if missing:
        print(f"determinism-gate: ERROR: expected artifacts not produced: "
              f"{', '.join(missing)} (got: {', '.join(sorted(run1))})",
              file=sys.stderr)
        return 1

    status = 0
    for name in sorted(set(run1) | set(run2)):
        a, b = run1.get(name), run2.get(name)
        if a is None or b is None:
            print(f"determinism-gate: FAIL: {name} written by only one run")
            status = 1
            continue
        if a == b:
            digest = hashlib.sha256(a).hexdigest()[:16]
            print(f"determinism-gate: ok: {name} "
                  f"({len(a)} bytes, sha256 {digest})")
            continue
        off = first_difference(a, b)
        print(f"determinism-gate: FAIL: {name} diverges at byte {off} "
              f"(sizes {len(a)} vs {len(b)})\n"
              f"  run1:\n{hex_context(a, off)}\n"
              f"  run2:\n{hex_context(b, off)}")
        located = localize_divergence(a, b)
        if located is not None:
            print(located)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
