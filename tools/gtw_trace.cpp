// gtw-trace: inspect a GTWT binary trace (the VAMPIR-style logs the
// simulator's TraceRecorder writes) from the command line.
//
//   gtw-trace run.gtwt                     summary (ranks, events, span)
//   gtw-trace run.gtwt --profile           per-rank/state time profile
//   gtw-trace run.gtwt --gantt [cols]      text timeline
//   gtw-trace run.gtwt --msg-matrix        rank-pair message statistics
//   gtw-trace run.gtwt --chrome out.json   convert to Chrome trace-event
//                                          JSON (Perfetto / chrome://tracing)
//   gtw-trace run.gtwt --metrics           event-kind and message totals
//   gtw-trace run.gtwt --obs m.json        DES-engine section from an
//                                          OBS_*.metrics.json snapshot
//   gtw-trace OBS_x.metrics.json           engine section alone (no trace)
//
// Flags combine; sections print in the order given above.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "trace/trace.hpp"

namespace {

using gtw::trace::EventKind;
using gtw::trace::TraceEvent;
using gtw::trace::TraceRecorder;
using gtw::trace::TraceStats;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <trace.gtwt|metrics.json> [--profile] [--gantt [cols]]"
               " [--msg-matrix] [--chrome out.json] [--metrics]"
               " [--obs metrics.json]\n";
  return 2;
}

// Print the engine-core metrics (scheduler calendar, event pool, link burst
// pools) out of an OBS_*.metrics.json snapshot.  The exporter writes one
// metric per line as `    "name": value,` so a line scan suffices — no JSON
// parser needed for our own format.
int print_obs_engine(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "gtw-trace: cannot open '" << path << "'\n";
    return 1;
  }
  std::cout << "des engine (" << path << ")\n";
  bool any = false;
  std::string line;
  while (std::getline(in, line)) {
    const auto q0 = line.find('"');
    if (q0 == std::string::npos) continue;
    const auto q1 = line.find('"', q0 + 1);
    if (q1 == std::string::npos) continue;
    const std::string name = line.substr(q0 + 1, q1 - q0 - 1);
    const bool engine =
        name.rfind("des.sched.", 0) == 0 ||
        name.find(".burst_pool_") != std::string::npos ||
        name.find(".bursts_completed") != std::string::npos;
    if (!engine) continue;
    auto colon = line.find(':', q1);
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ')) value.erase(0, 1);
    while (!value.empty() && (value.back() == ',' || value.back() == ' '))
      value.pop_back();
    std::cout << "  " << name << ": " << value << "\n";
    any = true;
  }
  if (!any)
    std::cout << "  (no des.sched.* metrics in snapshot — was the scheduler"
                 " instrumented?)\n";
  return 0;
}

void print_summary(const TraceRecorder& rec) {
  std::int64_t begin = 0, end = 0;
  if (!rec.events().empty()) {
    begin = rec.events().front().time_ps;
    end = rec.events().back().time_ps;
  }
  std::cout << "ranks:   " << rec.ranks() << "\n"
            << "states:  " << rec.state_count() << "\n"
            << "events:  " << rec.events().size() << "\n"
            << "span:    " << static_cast<double>(end - begin) * 1e-12
            << " s (" << begin << " .. " << end << " ps)\n";
}

void print_metrics(const TraceRecorder& rec, const TraceStats& stats) {
  std::uint64_t enters = 0, leaves = 0, sends = 0, recvs = 0;
  for (const TraceEvent& e : rec.events()) {
    switch (e.kind) {
      case EventKind::kEnter: ++enters; break;
      case EventKind::kLeave: ++leaves; break;
      case EventKind::kSend: ++sends; break;
      case EventKind::kRecv: ++recvs; break;
    }
  }
  std::cout << "enter events:   " << enters << "\n"
            << "leave events:   " << leaves << "\n"
            << "send events:    " << sends << "\n"
            << "recv events:    " << recvs << "\n"
            << "total messages: " << stats.total_messages() << "\n"
            << "total bytes:    " << stats.total_bytes() << "\n";
}

void print_msg_matrix(const TraceRecorder& rec, const TraceStats& stats) {
  const auto ranks = static_cast<std::uint32_t>(rec.ranks());
  std::cout << "messages (rows: from, cols: to)\n      ";
  for (std::uint32_t to = 0; to < ranks; ++to) std::cout << "\t" << to;
  std::cout << "\n";
  for (std::uint32_t from = 0; from < ranks; ++from) {
    std::cout << "  " << from << "  ";
    for (std::uint32_t to = 0; to < ranks; ++to)
      std::cout << "\t" << stats.messages(from, to);
    std::cout << "\n";
  }
  std::cout << "bytes (rows: from, cols: to)\n      ";
  for (std::uint32_t to = 0; to < ranks; ++to) std::cout << "\t" << to;
  std::cout << "\n";
  for (std::uint32_t from = 0; from < ranks; ++from) {
    std::cout << "  " << from << "  ";
    for (std::uint32_t to = 0; to < ranks; ++to)
      std::cout << "\t" << stats.bytes(from, to);
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];
  if (path == "--help" || path == "-h") return usage(argv[0]);

  // Metrics-snapshot-only mode: the engine section needs no trace file.
  if (path.size() > 5 && path.rfind(".json") == path.size() - 5)
    return print_obs_engine(path);

  bool profile = false, gantt = false, msg_matrix = false, metrics = false;
  int gantt_cols = 72;
  std::string chrome_out;
  std::string obs_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      profile = true;
    } else if (arg == "--gantt") {
      gantt = true;
      if (i + 1 < argc && argv[i + 1][0] != '-')
        gantt_cols = std::stoi(argv[++i]);
    } else if (arg == "--msg-matrix") {
      msg_matrix = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--chrome") {
      if (i + 1 >= argc) return usage(argv[0]);
      chrome_out = argv[++i];
    } else if (arg == "--obs") {
      if (i + 1 >= argc) return usage(argv[0]);
      obs_path = argv[++i];
    } else {
      std::cerr << "gtw-trace: unknown flag '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "gtw-trace: cannot open '" << path << "'\n";
    return 1;
  }
  TraceRecorder rec = TraceRecorder::read(in);
  const TraceStats stats(rec);

  const bool any_section =
      profile || gantt || msg_matrix || metrics || !chrome_out.empty();
  if (!any_section) print_summary(rec);
  if (!obs_path.empty()) {
    if (const int rc = print_obs_engine(obs_path); rc != 0) return rc;
  }

  if (profile) std::cout << stats.profile();
  if (gantt) std::cout << stats.gantt(gantt_cols);
  if (msg_matrix) print_msg_matrix(rec, stats);
  if (metrics) print_metrics(rec, stats);
  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out, std::ios::binary);
    if (!out) {
      std::cerr << "gtw-trace: cannot write '" << chrome_out << "'\n";
      return 1;
    }
    gtw::obs::write_chrome_trace(out, rec);
    std::cout << "wrote " << chrome_out << "\n";
  }
  return 0;
}
