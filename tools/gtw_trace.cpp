// gtw-trace: inspect a GTWT binary trace (the VAMPIR-style logs the
// simulator's TraceRecorder writes) from the command line.
//
//   gtw-trace run.gtwt                     summary (ranks, events, span)
//   gtw-trace run.gtwt --profile           per-rank/state time profile
//   gtw-trace run.gtwt --gantt [cols]      text timeline
//   gtw-trace run.gtwt --msg-matrix        rank-pair message statistics
//   gtw-trace run.gtwt --chrome out.json   convert to Chrome trace-event
//                                          JSON (Perfetto / chrome://tracing)
//   gtw-trace run.gtwt --metrics           event-kind and message totals
//   gtw-trace run.gtwt --obs m.json        DES-engine section from an
//                                          OBS_*.metrics.json snapshot
//   gtw-trace OBS_x.metrics.json           engine section alone (no trace)
//
// Spans mode — first argument is an OBS_*.spans.json causal-span artifact
// (DESIGN.md section 13):
//
//   gtw-trace x.spans.json                       summary (traces, spans)
//   gtw-trace x.spans.json --budget              latency-budget table: the
//                                                end-to-end time of every
//                                                closed trace decomposed
//                                                into phases; phase sums
//                                                equal the total exactly
//                                                (integer picoseconds)
//   gtw-trace x.spans.json --critical-path SEL   per-phase waterfall of one
//                                                trace; SEL is a trace id,
//                                                `worst`, or `p99`
//   gtw-trace x.spans.json --chrome out.json     Chrome trace-event export
//                                                with flow arrows on the
//                                                parent->child span edges
//
// A missing, malformed, or truncated spans artifact (footer counts
// disagree with the lines present) is a non-zero exit with a one-line
// reason — CI depends on that.
//
// Flags combine; sections print in the order given above.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/span_analysis.hpp"
#include "trace/trace.hpp"

namespace {

using gtw::trace::EventKind;
using gtw::trace::TraceEvent;
using gtw::trace::TraceRecorder;
using gtw::trace::TraceStats;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <trace.gtwt|metrics.json> [--profile] [--gantt [cols]]"
               " [--msg-matrix] [--chrome out.json] [--metrics]"
               " [--obs metrics.json]\n"
               "       "
            << argv0
            << " <spans.json> [--budget] [--critical-path <id|worst|p99>]"
               " [--chrome out.json]\n";
  return 2;
}

// Print the engine-core metrics (scheduler calendar, event pool, link burst
// pools) out of an OBS_*.metrics.json snapshot.  The exporter writes one
// metric per line as `    "name": value,` so a line scan suffices — no JSON
// parser needed for our own format.
int print_obs_engine(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "gtw-trace: cannot open '" << path << "'\n";
    return 1;
  }
  std::cout << "des engine (" << path << ")\n";
  bool any = false;
  std::string line;
  while (std::getline(in, line)) {
    const auto q0 = line.find('"');
    if (q0 == std::string::npos) continue;
    const auto q1 = line.find('"', q0 + 1);
    if (q1 == std::string::npos) continue;
    const std::string name = line.substr(q0 + 1, q1 - q0 - 1);
    const bool engine =
        name.rfind("des.sched.", 0) == 0 ||
        name.find(".burst_pool_") != std::string::npos ||
        name.find(".bursts_completed") != std::string::npos;
    if (!engine) continue;
    auto colon = line.find(':', q1);
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ')) value.erase(0, 1);
    while (!value.empty() && (value.back() == ',' || value.back() == ' '))
      value.pop_back();
    std::cout << "  " << name << ": " << value << "\n";
    any = true;
  }
  if (!any)
    std::cout << "  (no des.sched.* metrics in snapshot — was the scheduler"
                 " instrumented?)\n";
  return 0;
}

void print_summary(const TraceRecorder& rec) {
  std::int64_t begin = 0, end = 0;
  if (!rec.events().empty()) {
    begin = rec.events().front().time_ps;
    end = rec.events().back().time_ps;
  }
  std::cout << "ranks:   " << rec.ranks() << "\n"
            << "states:  " << rec.state_count() << "\n"
            << "events:  " << rec.events().size() << "\n"
            << "span:    " << static_cast<double>(end - begin) * 1e-12
            << " s (" << begin << " .. " << end << " ps)\n";
}

void print_metrics(const TraceRecorder& rec, const TraceStats& stats) {
  std::uint64_t enters = 0, leaves = 0, sends = 0, recvs = 0;
  for (const TraceEvent& e : rec.events()) {
    switch (e.kind) {
      case EventKind::kEnter: ++enters; break;
      case EventKind::kLeave: ++leaves; break;
      case EventKind::kSend: ++sends; break;
      case EventKind::kRecv: ++recvs; break;
    }
  }
  std::cout << "enter events:   " << enters << "\n"
            << "leave events:   " << leaves << "\n"
            << "send events:    " << sends << "\n"
            << "recv events:    " << recvs << "\n"
            << "total messages: " << stats.total_messages() << "\n"
            << "total bytes:    " << stats.total_bytes() << "\n";
}

void print_msg_matrix(const TraceRecorder& rec, const TraceStats& stats) {
  const auto ranks = static_cast<std::uint32_t>(rec.ranks());
  std::cout << "messages (rows: from, cols: to)\n      ";
  for (std::uint32_t to = 0; to < ranks; ++to) std::cout << "\t" << to;
  std::cout << "\n";
  for (std::uint32_t from = 0; from < ranks; ++from) {
    std::cout << "  " << from << "  ";
    for (std::uint32_t to = 0; to < ranks; ++to)
      std::cout << "\t" << stats.messages(from, to);
    std::cout << "\n";
  }
  std::cout << "bytes (rows: from, cols: to)\n      ";
  for (std::uint32_t to = 0; to < ranks; ++to) std::cout << "\t" << to;
  std::cout << "\n";
  for (std::uint32_t from = 0; from < ranks; ++from) {
    std::cout << "  " << from << "  ";
    for (std::uint32_t to = 0; to < ranks; ++to)
      std::cout << "\t" << stats.bytes(from, to);
    std::cout << "\n";
  }
}

// --- spans mode -------------------------------------------------------------

using gtw::obs::BudgetSegment;
using gtw::obs::PhaseBudget;
using gtw::obs::SpanFile;
using gtw::obs::TraceRec;

void print_spans_summary(const SpanFile& f) {
  std::size_t closed = 0, aborted = 0, open = 0;
  for (const TraceRec& t : f.traces) {
    if (t.status == "closed")
      ++closed;
    else if (t.status == "aborted")
      ++aborted;
    else
      ++open;
  }
  std::cout << "label:   " << f.label << "\n"
            << "traces:  " << f.traces.size() << " (" << closed << " closed, "
            << aborted << " aborted, " << open << " open)\n"
            << "spans:   " << f.spans.size() << " (" << f.open_spans
            << " open at write)\n";
}

// The delay-budget table (paper experiment e2): every closed trace's
// end-to-end latency decomposed into phases by the innermost-active-span
// sweep.  The sweep partitions each root interval, so the phase column
// sums to the end-to-end column *exactly* in integer picoseconds — a
// mismatch means a corrupt artifact and is a non-zero exit.
int print_budget(const SpanFile& f) {
  const PhaseBudget b = gtw::obs::budget(f);
  std::cout << "latency budget (label \"" << f.label << "\", "
            << b.closed_traces << " closed trace(s); " << b.aborted_traces
            << " aborted, " << b.open_traces << " open excluded)\n";
  if (b.closed_traces == 0) {
    std::cout << "  (no closed traces to decompose)\n";
    return 0;
  }

  // Largest share first; ties in lexicographic phase order (the map order),
  // so output is deterministic.
  std::vector<std::pair<std::string, std::int64_t>> rows(b.phase_ps.begin(),
                                                         b.phase_ps.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& x, const auto& y) {
                     return x.second > y.second;
                   });
  std::int64_t sum = 0;
  std::printf("  %-18s %20s %8s\n", "phase", "total_ps", "share");
  for (const auto& [phase, ps] : rows) {
    sum += ps;
    // Integer per-mille, rounded half up: exact and deterministic.
    const std::int64_t permille =
        b.total_ps == 0 ? 0 : (ps * 1000 + b.total_ps / 2) / b.total_ps;
    std::printf("  %-18s %20lld %5lld.%lld%%\n", phase.c_str(),
                static_cast<long long>(ps),
                static_cast<long long>(permille / 10),
                static_cast<long long>(permille % 10));
  }
  std::printf("  %-18s %20s\n", "", "--------------------");
  std::printf("  %-18s %20lld\n", "phase sum", static_cast<long long>(sum));
  std::printf("  %-18s %20lld", "end-to-end",
              static_cast<long long>(b.total_ps));
  if (sum == b.total_ps) {
    std::printf("  (exact)\n");
    return 0;
  }
  std::printf("  MISMATCH (delta %lld ps)\n",
              static_cast<long long>(sum - b.total_ps));
  std::cerr << "gtw-trace: budget decomposition does not sum to the"
               " end-to-end latency — corrupt spans artifact?\n";
  return 1;
}

// Waterfall of one trace: the sweep's segments in causal (== time) order,
// one row per contiguous slice, with a proportional bar on the right.
void print_critical_path(const SpanFile& f, const TraceRec& t) {
  const std::vector<BudgetSegment> segs = gtw::obs::sweep_trace(f, t.id);
  std::cout << "critical path: trace " << t.id << ", origin \"" << t.origin
            << "\", " << t.status;
  if (!t.reason.empty()) std::cout << " (" << t.reason << ")";
  if (segs.empty()) {
    std::cout << "\n  (no timed spans — trace still open, or zero-width)\n";
    return;
  }
  const std::int64_t t0 = segs.front().begin_ps;
  const std::int64_t total = segs.back().end_ps - t0;
  std::cout << ", " << total << " ps end-to-end\n";
  constexpr int kBar = 40;
  std::printf("  %14s %14s  %-16s %-38s %s\n", "t+ps", "dur_ps", "phase",
              "layers/span", "waterfall");
  for (const BudgetSegment& seg : segs) {
    const std::int64_t dur = seg.end_ps - seg.begin_ps;
    const int lo = static_cast<int>((seg.begin_ps - t0) * kBar / total);
    int hi = static_cast<int>((seg.end_ps - t0) * kBar / total);
    if (hi <= lo) hi = lo + 1;  // every segment gets at least one cell
    std::string bar(kBar, '.');
    for (int i = lo; i < hi && i < kBar; ++i) bar[i] = '#';
    // The layer chain from the root down to the owning span is the causal
    // crossing this slice of the budget sits on (flow>meta>tcp>link ...).
    const std::string span_col = gtw::obs::layer_chain(f, *seg.span) + "/" +
                                 seg.span->name +
                                 (seg.span->status == "aborted" ? "!" : "");
    std::printf("  %14lld %14lld  %-16s %-38s |%s|\n",
                static_cast<long long>(seg.begin_ps - t0),
                static_cast<long long>(dur), seg.span->phase.c_str(),
                span_col.c_str(), bar.c_str());
  }
}

int run_spans_mode(const std::string& path, int argc, char** argv) {
  bool budget = false;
  std::string critical_sel;
  std::string chrome_out;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--budget") {
      budget = true;
    } else if (arg == "--critical-path") {
      if (i + 1 >= argc) return usage(argv[0]);
      critical_sel = argv[++i];
    } else if (arg == "--chrome") {
      if (i + 1 >= argc) return usage(argv[0]);
      chrome_out = argv[++i];
    } else {
      std::cerr << "gtw-trace: unknown spans-mode flag '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "gtw-trace: cannot open '" << path << "'\n";
    return 1;
  }
  SpanFile f;
  std::string error;
  if (!gtw::obs::load_spans(in, path, f, error)) {
    std::cerr << "gtw-trace: " << error << "\n";
    return 1;
  }

  if (!budget && critical_sel.empty() && chrome_out.empty())
    print_spans_summary(f);
  if (budget) {
    if (const int rc = print_budget(f); rc != 0) return rc;
  }
  if (!critical_sel.empty()) {
    const TraceRec* t = gtw::obs::select_trace(f, critical_sel, error);
    if (t == nullptr) {
      std::cerr << "gtw-trace: " << error << "\n";
      return 1;
    }
    print_critical_path(f, *t);
  }
  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out, std::ios::binary);
    if (!out) {
      std::cerr << "gtw-trace: cannot write '" << chrome_out << "'\n";
      return 1;
    }
    gtw::obs::write_spans_chrome(out, f);
    std::cout << "wrote " << chrome_out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];
  if (path == "--help" || path == "-h") return usage(argv[0]);

  // Spans mode: causal-span artifacts get their own flag set.
  if (path.size() > 11 && path.rfind(".spans.json") == path.size() - 11)
    return run_spans_mode(path, argc, argv);

  // Metrics-snapshot-only mode: the engine section needs no trace file.
  if (path.size() > 5 && path.rfind(".json") == path.size() - 5)
    return print_obs_engine(path);

  bool profile = false, gantt = false, msg_matrix = false, metrics = false;
  int gantt_cols = 72;
  std::string chrome_out;
  std::string obs_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      profile = true;
    } else if (arg == "--gantt") {
      gantt = true;
      if (i + 1 < argc && argv[i + 1][0] != '-')
        gantt_cols = std::stoi(argv[++i]);
    } else if (arg == "--msg-matrix") {
      msg_matrix = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--chrome") {
      if (i + 1 >= argc) return usage(argv[0]);
      chrome_out = argv[++i];
    } else if (arg == "--obs") {
      if (i + 1 >= argc) return usage(argv[0]);
      obs_path = argv[++i];
    } else {
      std::cerr << "gtw-trace: unknown flag '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "gtw-trace: cannot open '" << path << "'\n";
    return 1;
  }
  TraceRecorder rec = TraceRecorder::read(in);
  const TraceStats stats(rec);

  const bool any_section =
      profile || gantt || msg_matrix || metrics || !chrome_out.empty();
  if (!any_section) print_summary(rec);
  if (!obs_path.empty()) {
    if (const int rc = print_obs_engine(obs_path); rc != 0) return rc;
  }

  if (profile) std::cout << stats.profile();
  if (gantt) std::cout << stats.gantt(gantt_cols);
  if (msg_matrix) print_msg_matrix(rec, stats);
  if (metrics) print_metrics(rec, stats);
  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out, std::ios::binary);
    if (!out) {
      std::cerr << "gtw-trace: cannot write '" << chrome_out << "'\n";
      return 1;
    }
    gtw::obs::write_chrome_trace(out, rec);
    std::cout << "wrote " << chrome_out << "\n";
  }
  return 0;
}
