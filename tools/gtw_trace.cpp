// gtw-trace: inspect a GTWT binary trace (the VAMPIR-style logs the
// simulator's TraceRecorder writes) from the command line.
//
//   gtw-trace run.gtwt                     summary (ranks, events, span)
//   gtw-trace run.gtwt --profile           per-rank/state time profile
//   gtw-trace run.gtwt --gantt [cols]      text timeline
//   gtw-trace run.gtwt --msg-matrix        rank-pair message statistics
//   gtw-trace run.gtwt --chrome out.json   convert to Chrome trace-event
//                                          JSON (Perfetto / chrome://tracing)
//   gtw-trace run.gtwt --metrics           event-kind and message totals
//
// Flags combine; sections print in the order given above.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "trace/trace.hpp"

namespace {

using gtw::trace::EventKind;
using gtw::trace::TraceEvent;
using gtw::trace::TraceRecorder;
using gtw::trace::TraceStats;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <trace.gtwt> [--profile] [--gantt [cols]] [--msg-matrix]"
               " [--chrome out.json] [--metrics]\n";
  return 2;
}

void print_summary(const TraceRecorder& rec) {
  std::int64_t begin = 0, end = 0;
  if (!rec.events().empty()) {
    begin = rec.events().front().time_ps;
    end = rec.events().back().time_ps;
  }
  std::cout << "ranks:   " << rec.ranks() << "\n"
            << "states:  " << rec.state_count() << "\n"
            << "events:  " << rec.events().size() << "\n"
            << "span:    " << static_cast<double>(end - begin) * 1e-12
            << " s (" << begin << " .. " << end << " ps)\n";
}

void print_metrics(const TraceRecorder& rec, const TraceStats& stats) {
  std::uint64_t enters = 0, leaves = 0, sends = 0, recvs = 0;
  for (const TraceEvent& e : rec.events()) {
    switch (e.kind) {
      case EventKind::kEnter: ++enters; break;
      case EventKind::kLeave: ++leaves; break;
      case EventKind::kSend: ++sends; break;
      case EventKind::kRecv: ++recvs; break;
    }
  }
  std::cout << "enter events:   " << enters << "\n"
            << "leave events:   " << leaves << "\n"
            << "send events:    " << sends << "\n"
            << "recv events:    " << recvs << "\n"
            << "total messages: " << stats.total_messages() << "\n"
            << "total bytes:    " << stats.total_bytes() << "\n";
}

void print_msg_matrix(const TraceRecorder& rec, const TraceStats& stats) {
  const auto ranks = static_cast<std::uint32_t>(rec.ranks());
  std::cout << "messages (rows: from, cols: to)\n      ";
  for (std::uint32_t to = 0; to < ranks; ++to) std::cout << "\t" << to;
  std::cout << "\n";
  for (std::uint32_t from = 0; from < ranks; ++from) {
    std::cout << "  " << from << "  ";
    for (std::uint32_t to = 0; to < ranks; ++to)
      std::cout << "\t" << stats.messages(from, to);
    std::cout << "\n";
  }
  std::cout << "bytes (rows: from, cols: to)\n      ";
  for (std::uint32_t to = 0; to < ranks; ++to) std::cout << "\t" << to;
  std::cout << "\n";
  for (std::uint32_t from = 0; from < ranks; ++from) {
    std::cout << "  " << from << "  ";
    for (std::uint32_t to = 0; to < ranks; ++to)
      std::cout << "\t" << stats.bytes(from, to);
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];
  if (path == "--help" || path == "-h") return usage(argv[0]);

  bool profile = false, gantt = false, msg_matrix = false, metrics = false;
  int gantt_cols = 72;
  std::string chrome_out;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile") {
      profile = true;
    } else if (arg == "--gantt") {
      gantt = true;
      if (i + 1 < argc && argv[i + 1][0] != '-')
        gantt_cols = std::stoi(argv[++i]);
    } else if (arg == "--msg-matrix") {
      msg_matrix = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--chrome") {
      if (i + 1 >= argc) return usage(argv[0]);
      chrome_out = argv[++i];
    } else {
      std::cerr << "gtw-trace: unknown flag '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "gtw-trace: cannot open '" << path << "'\n";
    return 1;
  }
  TraceRecorder rec = TraceRecorder::read(in);
  const TraceStats stats(rec);

  const bool any_section =
      profile || gantt || msg_matrix || metrics || !chrome_out.empty();
  if (!any_section) print_summary(rec);

  if (profile) std::cout << stats.profile();
  if (gantt) std::cout << stats.gantt(gantt_cols);
  if (msg_matrix) print_msg_matrix(rec, stats);
  if (metrics) print_metrics(rec, stats);
  if (!chrome_out.empty()) {
    std::ofstream out(chrome_out, std::ios::binary);
    if (!out) {
      std::cerr << "gtw-trace: cannot write '" << chrome_out << "'\n";
      return 1;
    }
    gtw::obs::write_chrome_trace(out, rec);
    std::cout << "wrote " << chrome_out << "\n";
  }
  return 0;
}
