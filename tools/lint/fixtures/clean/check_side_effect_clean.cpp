// Fixture: observe-only GTW_CHECK_HOOK invocations plus checker-state
// maintenance done the sanctioned way — inside an explicit #if block, not
// inside the macro argument.  check-side-effect must stay silent.
#define GTW_CHECK_HOOK(expr) \
  do {                       \
    expr;                    \
  } while (false)

struct Hook {
  virtual ~Hook() = default;
  virtual void on_fire(unsigned long seq) = 0;
};

struct Engine {
  Hook* hook = nullptr;
  unsigned long seq = 0;
#if defined(GTW_CHECK)
  bool check_live = false;
#endif

  void step() {
#if defined(GTW_CHECK)
    check_live = true;  // checker-state maintenance, outside the macro
#endif
    GTW_CHECK_HOOK(if (hook != nullptr) hook->on_fire(seq));
    GTW_CHECK_HOOK(if (hook != nullptr && seq >= 1) hook->on_fire(seq - 1));
  }
};
