// Fixture: no rule may fire here — the deterministic counterparts of every
// hazard (ordered containers, seeded Rng, DES clock, id keys, forward
// scheduling).  Not compiled — lint fixture only.
#include <cstdint>
#include <map>
#include <set>
#include <vector>

struct Rng {
  std::uint64_t next_u64();
};

struct Sched {
  long now() const { return 1000; }
  void schedule_at(long when, int ev);
  void schedule_after(long delay, int ev);
};

struct RouteTable {
  std::map<std::uint32_t, int> routes_;
  std::set<std::uint64_t> live_ids_;

  int total() const {
    int sum = 0;
    for (const auto& kv : routes_) sum += kv.second;
    return sum;
  }
};

void arm(Sched& s, Rng& rng) {
  s.schedule_after(static_cast<long>(rng.next_u64() % 100), 1);
  s.schedule_at(s.now() + 50, 2);
}
