// Fixture: every trigger below sits ONLY inside a comment, string literal,
// char literal, or raw string.  The token-level lexer must keep ALL rules
// silent — the v1 line-regex scanner false-positived on several of these.
// Not compiled — lint fixture only.

// line comment: std::unordered_map<Key*, Value> m; rand(); time(nullptr);

/* block comment spanning lines:
   sched.schedule_after(sched.now() - delta, cb);
   double stale_bps = 622.08e6;
   auto* ev = new des::Event();
   std::map<Connection*, int> by_conn;
   std::chrono::system_clock::now();
*/

namespace gtw {

const char* kDoc =
    "for (auto& kv : table_) {} srand(7); std::unordered_set<int> s; "
    "printf(\"%f bytes\", 3.14); tcp_connect(host, port);";

const char* kSnippet = R"lint(
std::unordered_map<int*, int> m;
double rate_bps = 2.4e9;
reg.counter("wan.X"); reg.gauge("wan.x"); reg.gauge("wan.X");
sched.schedule_after(dt, [&] { boom(); });
std::chrono::system_clock::now(); time(nullptr);
new Event(); malloc(64);
)lint";

const char kExp = 'e';  // char literal must not glue onto neighbours

}  // namespace gtw
