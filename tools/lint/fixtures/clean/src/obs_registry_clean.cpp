// Fixture: obs-name-registry must stay silent on consistent re-registration
// (same name, same kind), prefixed dynamic names, and distinct metrics.
// Not compiled — lint fixture only.

#include <string>

#include "obs/registry.hpp"

namespace gtw {

void install(obs::Registry& reg, const std::string& prefix) {
  reg.counter("wan.bytes_total");
  reg.counter("wan.bytes_total");      // same name + same kind: fine
  reg.gauge(prefix + "window_bytes");  // prefix + leaf literal: fine
  reg.histogram("wan.rtt_ms", {1.0, 2.0, 4.0});
  reg.probe_gauge("wan.queue_depth", [] { return 0.0; });
}

}  // namespace gtw
