// Fixture: the sanctioned patterns — slots come from the slab pool, value
// types move by value, unrelated types may still be heap-allocated, and a
// deliberate exception carries the in-diff annotation.
#include <cstdint>
#include <memory>
#include <vector>

namespace net { struct Frame { std::uint32_t wire_bytes = 0; }; }

template <typename T> struct SlabPool {
  std::uint32_t acquire() { return 0; }
  void release(std::uint32_t) {}
  T& operator[](std::uint32_t);
};

struct EntryLog {};  // name merely *contains* Entry: not a pooled record

void pooled_hot_path(SlabPool<net::Frame>& pool, std::vector<net::Frame>& q) {
  const std::uint32_t slot = pool.acquire();  // fine: pool slot
  q.push_back(net::Frame{53});                // fine: by value
  pool.release(slot);
  auto log = std::make_unique<EntryLog>();    // fine: not an event record
  (void)log;
}

void sanctioned_exception() {
  auto f = new net::Frame;  // gtw-lint: allow(pool-bypass-new)
  delete f;
}
