// Fixture: the sanctioned span-producer shapes — result stored, returned,
// consumed as an argument, or explicitly annotated.
#include <cstdint>

struct Ctx {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

struct Hook {
  Ctx mint(const char* origin, std::int64_t now);
  std::uint64_t begin_span(Ctx parent, int phase, const char* layer,
                           const char* name, std::int64_t now);
  void end_span(std::uint64_t span, std::int64_t now);
  Ctx adopt(Ctx ctx);
};

struct Message {
  Ctx ctx;
  std::uint64_t span = 0;
};

std::uint64_t traced_send(Hook* h, Message& m, std::int64_t now) {
  m.ctx = h->mint("meta.path", now);                       // fine: stored
  m.span = h->begin_span(m.ctx, 1, "meta", "msg", now);    // fine: stored
  h->adopt(Ctx{m.ctx.trace_id, m.span});                   // fine: adopt is
                                                           // not a producer
  return h->begin_span(m.ctx, 2, "tcp", "segment", now);   // fine: returned
}

void consumed_as_argument(Hook* h, Message& m, std::int64_t now) {
  h->end_span(h->begin_span(m.ctx, 1, "tcp", "probe", now),  // fine: consumed
              now);
}

void sanctioned_exception(Hook* h, Ctx ctx, std::int64_t now) {
  // The root span of a fire-and-forget probe: retired by the trace abort
  // cascade at teardown, never individually.
  // gtw-lint: allow(span-unclosed)
  h->begin_span(ctx, 3, "obs", "probe", now);
}
