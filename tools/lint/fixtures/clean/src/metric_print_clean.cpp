// Fixture: the sanctioned ways library code handles output — building
// strings with snprintf, diagnostics on stderr, and an annotated exception.
#include <cstdio>
#include <iostream>
#include <string>

std::string render_metrics(unsigned long long tx_bytes) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "tx_bytes=%llu", tx_bytes);  // fine: string
  return buf;
}

void diagnostics(const std::string& what) {
  std::cerr << "warning: " << what << "\n";  // fine: stderr
  fprintf(stderr, "detail: %s\n", what.c_str());
}

void sanctioned_exception() {
  // gtw-lint: allow(raw-metric-print)
  std::cout << "banner\n";
}
