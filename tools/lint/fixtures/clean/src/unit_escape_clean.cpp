// Fixture: unit-escape must stay silent on typed arithmetic, on raw
// extraction that does NOT feed a units construction, and on annotated
// conversion boundaries.  Not compiled — lint fixture only.

#include "units/units.hpp"

namespace gtw {

units::Bytes halve_window(units::Bytes w) {
  return w / 2;  // typed arithmetic: the unit never escapes
}

units::BitRate goodput(units::Bytes amount, des::SimTime d) {
  return units::per(amount.to_bits(), d);  // typed conversion helper
}

std::uint64_t wire_header_field(units::Bytes w) {
  return w.count();  // extraction alone (serialisation boundary): fine
}

// gtw-lint: allow(unit-escape) — AAL5 conversion boundary; raw math is the point
units::Cells to_cells(units::Bytes b) { return units::Cells{b.count() / 48}; }

}  // namespace gtw
