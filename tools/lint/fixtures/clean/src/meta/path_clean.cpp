// Fixture: src/meta/ code that stays clean under meta-raw-tcp — it talks
// TcpConfig (parameters, fine everywhere) and routes traffic through the
// path-transport abstraction instead of holding a raw connection.  The
// path_transport translation unit itself is exempt by path; this file
// proves ordinary meta code needs no exemption.
namespace gtw::net {
struct TcpConfig {
  int initial_cwnd_segments = 2;
};
}  // namespace gtw::net

namespace gtw::meta {

struct PathHandle {};  // stand-in for meta::PathTransport

struct Router {
  PathHandle* path = nullptr;
  net::TcpConfig per_stream;  // naming the config type is always legal
};

void send_over_path(Router& r) { (void)r.path; }

}  // namespace gtw::meta
