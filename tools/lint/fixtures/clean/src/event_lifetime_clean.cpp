// Fixture: event-lifetime must stay silent when handles are stored, when
// lambdas capture by value, in classes that never store handles, and on
// annotated sites.  Not compiled — lint fixture only.

#include "des/scheduler.hpp"

namespace gtw {

class Poller {
 public:
  void tick();

 private:
  des::Scheduler* sched_ = nullptr;
  des::SimTime dt_;
  des::EventHandle tick_;
};

void Poller::tick() {
  tick_ = sched_->schedule_after(dt_, [this] { tick(); });  // stored: fine
}

void fire_and_forget(des::Scheduler& s, des::SimTime dt) {
  s.schedule_after(dt, [] {});  // no captures, no owner: fine
  int budget = 3;
  s.schedule_after(dt, [budget] { (void)budget; });  // by value: fine
}

void allowed_ref(des::Scheduler& s, des::SimTime dt, int& n) {
  // gtw-lint: allow(event-lifetime) — scheduler drained before this frame returns
  s.schedule_after(dt, [&] { ++n; });
}

}  // namespace gtw
