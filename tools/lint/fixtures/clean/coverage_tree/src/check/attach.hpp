// Fixture counterpart: full coverage of the obs catalog next door.
#pragma once

namespace gtw::net {
class Link;
class Host;
}  // namespace gtw::net

namespace gtw::check {

class Monitor;

void attach_link(Monitor& mon, const net::Link& link);
void attach_host(Monitor& mon, const net::Host& host);

}  // namespace gtw::check
