// Fixture: every component the obs catalog instruments also has an
// attach_* entry in this tree's src/check/ catalog — check-coverage must
// stay silent.
#pragma once

namespace gtw::net {
class Link;
class Host;
}  // namespace gtw::net

namespace gtw::obs {

class Registry;

void instrument_link(Registry& reg, const net::Link& link);
void instrument_host(Registry& reg, const net::Host& host);

}  // namespace gtw::obs
