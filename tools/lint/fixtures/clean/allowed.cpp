// Fixture: every hazard below carries a `gtw-lint: allow(...)` annotation
// (same-line and line-above forms), so no rule may fire.  Not compiled —
// lint fixture only.
#include <cstdlib>
#include <map>
#include <unordered_map>

struct Widget;

struct Cache {
  // Pure point lookups keyed by id; never iterated, ordering never escapes.
  // gtw-lint: allow(unordered-container)
  std::unordered_map<int, int> by_id_;

  std::map<Widget*, int> scratch_;  // gtw-lint: allow(pointer-order)
};

inline int legacy_seed() {
  return rand();  // gtw-lint: allow(raw-entropy)
}
