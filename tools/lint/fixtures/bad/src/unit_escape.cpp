// Fixture: rule unit-escape must fire when a raw scalar pulled out of a
// units type via .count()/.value() flows, on the same statement, back into
// a units-typed construction — the arithmetic in between silently left the
// unit system.  Not compiled — lint fixture only.

#include "units/units.hpp"

namespace gtw {

units::Bytes halve_window(units::Bytes w) {
  return units::Bytes{w.count() / 2};  // finding: escape, halve, re-wrap
}

units::BitRate goodput(units::Bytes amount, des::SimTime d) {
  // finding: manual bits/sec math instead of units::per()
  return units::BitRate::bps(
      static_cast<double>(amount.count()) * 8.0 / d.sec());
}

}  // namespace gtw
