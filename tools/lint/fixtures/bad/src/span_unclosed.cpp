// Fixture: span producers that throw away the only handle to what they
// opened.  The path contains "src/", which is how the real tree is gated.
#include <cstdint>

struct Ctx {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

struct Hook {
  Ctx mint(const char* origin, std::int64_t now);
  std::uint64_t begin_span(Ctx parent, int phase, const char* layer,
                           const char* name, std::int64_t now);
  void end_span(std::uint64_t span, std::int64_t now);
};

void send_message(Hook* h, Ctx ctx, std::int64_t now) {
  h->begin_span(ctx, 1, "meta", "msg", now);            // BAD: id discarded
  h->begin_span(ctx, 2, "tcp",                          // BAD: id discarded,
                "segment",                              // call split across
                now);                                   // physical lines
}

void start_workload(Hook& h, std::int64_t now) {
  h.mint("bench.origin", now);  // BAD: context discarded, trace unclosable
}
