// Fixture: rule obs-name-registry — one semantic metric name must map to
// one instrument kind, and names must not differ only by case (exporters
// sort lexicographically, so case twins reorder silently).  Not compiled.

#include "obs/registry.hpp"

namespace gtw {

void install(obs::Registry& reg) {
  reg.counter("wan.bytes_total");  // finding: kind collision (counter here)
  reg.gauge("wan.bytes_total");    // finding: kind collision (gauge here)
  reg.probe_counter("wan.Retries", [] { return 0.0; });  // finding: case twin
  reg.counter("wan.retries");                            // finding: case twin
}

}  // namespace gtw
