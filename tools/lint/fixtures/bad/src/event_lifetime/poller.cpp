// Fixture: rule event-lifetime, both patterns.  Not compiled.

#include "poller.hpp"

namespace gtw {

void Poller::tick() {
  // finding: handle discarded in a member fn of a handle-storing class —
  // the periodic tick can never be cancelled in ~Poller.
  sched_->schedule_after(dt_, [this] { tick(); });
}

void drive(des::Scheduler& s, des::SimTime dt) {
  int fired = 0;
  // finding: [&]-capture lambda in a delayed schedule from a free function;
  // `fired` is dead by the time the event runs.
  s.schedule_after(dt, [&] { ++fired; });
}

}  // namespace gtw
