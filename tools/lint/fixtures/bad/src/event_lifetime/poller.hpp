// Fixture (whole-project): Poller stores EventHandle members, so any
// member function that discards a schedule_* handle is suspect.  The class
// declaration lives in THIS file; the discard lives in poller.cpp — the
// rule must connect them across files.  Not compiled — lint fixture only.
#pragma once

#include "des/scheduler.hpp"

namespace gtw {

class Poller {
 public:
  void arm();
  void tick();

 private:
  des::Scheduler* sched_ = nullptr;
  des::SimTime dt_;
  des::EventHandle stop_;  // the class clearly owns handle lifetimes...
};

}  // namespace gtw
