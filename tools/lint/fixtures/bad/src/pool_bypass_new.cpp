// Fixture: heap-allocating pooled event/packet records from library code.
// The path contains "src/", which is how the real tree is gated.
#include <memory>

struct Entry;
namespace net { struct Frame; struct IpPacket; }

void leaky_hot_path() {
  Entry* e = new Entry;                              // BAD
  auto f = new net::Frame();                         // BAD
  auto p = std::make_unique<net::IpPacket>();        // BAD
  auto s = std::make_shared<net::Frame>();           // BAD
  (void)e; (void)f; (void)p; (void)s;
}
