// Fixture: raw TcpConnection use inside src/meta/ outside path_transport —
// every mention below (including the stub declaration) must fire
// meta-raw-tcp: the WAN path belongs to meta::PathTransport.
#include <memory>

namespace gtw::net {
struct TcpConnection {};  // finding: even declaring it here is off-limits
}  // namespace gtw::net

namespace gtw::meta {

struct RogueRouter {
  std::unique_ptr<net::TcpConnection> conn;  // finding 1: member
};

void open_side_channel(RogueRouter& r) {
  r.conn = std::make_unique<net::TcpConnection>();  // finding 2: construct
}

net::TcpConnection* peek(RogueRouter& r) {  // finding 3: raw handle
  return r.conn.get();
}

}  // namespace gtw::meta
