// Fixture: direct metric dumping from library code.  The path contains
// "src/", which is how the real tree is gated.
#include <cstdio>
#include <iostream>

void dump_metrics(unsigned long long tx_bytes, double utilization) {
  std::cout << "tx_bytes=" << tx_bytes << "\n";            // BAD
  printf("utilization %.3f\n", utilization);               // BAD
  fprintf(stdout, "tx_bytes %llu\n", tx_bytes);            // BAD
  puts("-- metrics --");                                   // BAD
}
