// Fixture: cases the v1 line-regex scanner MISSED that the token scanner
// must catch — declarations split across physical lines and uppercase
// exponents.  Not compiled — lint fixture only.

#include <unordered_map>

struct RouteTable {
  std::unordered_map<
      long long,
      int>
      by_id;  // finding: unordered-container (decl split across lines)
};

void setup() {
  double uplink_Bps =
      97.5E6;  // finding: raw-rate-double decl (split + uppercase E)
  (void)uplink_Bps;
}
