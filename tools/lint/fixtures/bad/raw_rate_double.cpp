// Fixture: rule raw-rate-double must fire on every raw rate below — the
// _bps/_Bps declaration form and the bare e6/e9 literal form.  Dividing by
// 1e6 to pretty-print, and reading a typed rate out via .bps(), must stay
// silent.  Not compiled — lint fixture only.

struct LinkModel {
  double rate_bps = 622.08e6;         // finding: decl
  float budget_Bps = 0.0f;            // finding: decl
};

void configure(LinkModel& m) {
  m.rate_bps = 155.52 * 1e6;          // finding: literal forms a rate
  double line_rate = 2.4883e9;        // finding: literal forms a rate
  (void)line_rate;
}

struct TypedRate {
  double bps() const { return 0.0; }
};

double print_mbit(const TypedRate& r) {
  return r.bps() / 1e6;  // accessor read + formatting divide: silent
}
