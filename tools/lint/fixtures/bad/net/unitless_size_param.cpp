// Fixture: rule unitless-size-param must fire on raw byte-count
// parameters crossing a net API (this file sits under net/ on purpose —
// the rule only guards that boundary).  Struct fields and non-byte
// integers stay silent.  Not compiled — lint fixture only.
#include <cstdint>

namespace fakenet {

void send(int dst, std::uint64_t bytes);                 // finding
void enqueue(std::uint32_t wire_bytes, int vc);          // finding

struct Packet {
  std::uint64_t total_bytes = 0;  // field, not a parameter: silent
};

void route(int dst, int hops);  // no byte count: silent

}  // namespace fakenet
