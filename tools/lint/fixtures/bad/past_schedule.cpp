// Fixture: rule past-schedule must fire on both textually-negative
// schedule targets below.  Not compiled — lint fixture only.
struct Sched {
  long now() const { return 1000; }
  void schedule_at(long when, int ev);
  void schedule_after(long delay, int ev);
};

void rewind(Sched& s) {
  s.schedule_after(-5, 1);
  s.schedule_at(s.now() - 50, 2);
}
