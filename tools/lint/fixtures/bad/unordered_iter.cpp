// Fixture: rule unordered-iter must fire on both iteration forms below
// (range-for and explicit .begin()); the declaration itself also trips
// unordered-container.  Not compiled — lint fixture only.
#include <unordered_map>

struct HostTable {
  std::unordered_map<int, int> routes_;

  int total() const {
    int sum = 0;
    for (const auto& kv : routes_) sum += kv.second;
    return sum;
  }

  int first_key() const {
    auto it = routes_.begin();
    return it == routes_.end() ? -1 : it->first;
  }
};
