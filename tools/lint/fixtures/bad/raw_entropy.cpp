// Fixture: rule raw-entropy must fire on every entropy source below.
// Not compiled — lint fixture only.
#include <cstdlib>
#include <random>

int jitter_ms() {
  std::random_device rd;
  std::mt19937 gen(rd());
  (void)gen;
  return rand() % 7;
}

void reseed() { srand(42); }
