// Fixture: rule pointer-order must fire on the pointer-keyed ordered
// containers and the pointer hash below.  Not compiled — lint fixture only.
#include <functional>
#include <map>
#include <set>

struct Link;

struct Fabric {
  std::map<Link*, int> port_by_link;
  std::set<Link*> active_links;
};

std::size_t link_bucket(Link* l) { return std::hash<Link*>{}(l); }
