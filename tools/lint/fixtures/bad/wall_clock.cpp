// Fixture: rule wall-clock must fire on every host-clock read below.
// Not compiled — lint fixture only.
#include <chrono>
#include <ctime>

long stamp() {
  auto tp = std::chrono::steady_clock::now();
  (void)tp;
  auto wall = std::chrono::system_clock::now();
  (void)wall;
  return static_cast<long>(time(nullptr));
}
