// Fixture: rule unordered-container must fire on the member declaration.
// Not compiled — lint fixture only (see tools/lint/lint_selftest.py).
#include <cstdint>
#include <unordered_map>

struct EventRouter {
  std::unordered_map<std::uint64_t, int> pending_;
};
