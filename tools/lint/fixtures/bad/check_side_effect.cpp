// Fixture: mutating expressions inside GTW_CHECK_HOOK arguments.  Both
// sites below steer checker-only state from inside the macro, so the
// checked build simulates a different world than the unchecked one.
#define GTW_CHECK_HOOK(expr) \
  do {                       \
    expr;                    \
  } while (false)

struct Sampler {
  unsigned long fires = 0;
  bool armed = false;

  void on_fire() {
    GTW_CHECK_HOOK(++fires);        // mutating increment in hook argument
    GTW_CHECK_HOOK(armed = false);  // assignment in hook argument
  }

  // Observe-only invocation: comparisons and calls are fine.
  void on_probe(const Sampler* peer) {
    GTW_CHECK_HOOK(if (peer != nullptr) peer->noop());
  }
  void noop() const {}
};
