// Fixture: the obs catalog names two components (net::Link, net::Host)
// but the src/check/ attach catalog in this tree only covers net::Link —
// check-coverage must flag the net::Host blind spot once.
#pragma once

namespace gtw::net {
class Link;
class Host;
}  // namespace gtw::net

namespace gtw::obs {

class Registry;

void instrument_link(Registry& reg, const net::Link& link);
void instrument_host(Registry& reg, const net::Host& host);

}  // namespace gtw::obs
