// Fixture counterpart: the GTW-San catalog only knows net::Link, so the
// net::Host instrumented in ../obs/instrument.hpp is a coverage hole.
#pragma once

namespace gtw::net {
class Link;
}  // namespace gtw::net

namespace gtw::check {

class Monitor;

void attach_link(Monitor& mon, const net::Link& link);

}  // namespace gtw::check
