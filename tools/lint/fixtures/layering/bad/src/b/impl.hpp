// b -> a is a declared edge: legal on its own, but a/api.hpp includes us
// back, so the observed module graph has the cycle a -> b -> a.
#pragma once
#include "a/api.hpp"

namespace fx::b {
int impl();
}
