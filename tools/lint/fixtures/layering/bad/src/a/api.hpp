// finding: a -> b is not an allowed edge (a sits below b), and together
// with b/impl.hpp's legal b -> a include it closes a module cycle.
#pragma once
#include "b/impl.hpp"

namespace fx::a {
int api();
}
