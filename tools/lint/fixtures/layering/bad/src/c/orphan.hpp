// finding: module 'src/c/' is not declared in layers.toml at all.
#pragma once

namespace fx::c {
int orphan();
}
