// Bottom module: depends on nothing; system headers don't count as edges.
#pragma once
#include <cstdint>

namespace fx::a {
std::uint64_t api();
}
