#pragma once

namespace fx::b {
int impl_detail();
}
