// b -> a is declared in layers.toml: silent.  Intra-module includes
// (b -> b) never count as edges.
#pragma once
#include "a/api.hpp"
#include "b/impl_detail.hpp"

namespace fx::b {
int impl();
}
