#!/usr/bin/env python3
"""Self-test for gtw-lint: every rule must fire on its known-bad fixture
and stay silent on clean (and allow-annotated) code.

Runs gtw_lint.py as a subprocess against each fixture in
tools/lint/fixtures/ and compares the set of (rule, count) findings with
the expectation table below.  Whole-project rules (layering, obs registry,
event lifetime) get fixture *trees* — the layering ones carry their own
layers.toml, passed via --layers.  Also exercises --rules filtering, the
--json SARIF output, and the obs-catalog emit/check round trip.
Registered as the `gtw_lint_selftest` ctest.

Exit status: 0 all expectations met, 1 otherwise.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "gtw_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

FINDING_RE = re.compile(r"^(.*?):(\d+): \[([\w-]+)\] ")

# fixture (relative to fixtures/, file or directory) -> {rule: count}.
# Paths under bad/src/ and clean/src/ exercise the rules that only apply
# inside the source tree (the scanner matches on the "src/" path segment).
EXPECTATIONS = {
    "bad/unordered_container.cpp": {"unordered-container": 1},
    "bad/unordered_iter.cpp": {"unordered-container": 1, "unordered-iter": 2},
    "bad/raw_entropy.cpp": {"raw-entropy": 4},
    "bad/wall_clock.cpp": {"wall-clock": 3},
    "bad/pointer_order.cpp": {"pointer-order": 3},
    "bad/past_schedule.cpp": {"past-schedule": 2},
    # line 7 carries both the decl form and the literal form — the v1
    # line-regex reported it once; the token scanner sees both.
    "bad/raw_rate_double.cpp": {"raw-rate-double": 5},
    # declarations split across physical lines: invisible to v1's
    # line-at-a-time regexes, caught by the token stream.
    "bad/tokenizer_wins.cpp": {"unordered-container": 1,
                               "raw-rate-double": 1},
    "bad/net/unitless_size_param.cpp": {"unitless-size-param": 2},
    "bad/src/raw_metric_print.cpp": {"raw-metric-print": 4},
    "bad/src/pool_bypass_new.cpp": {"pool-bypass-new": 4},
    "bad/src/meta/raw_tcp.cpp": {"meta-raw-tcp": 4},
    "bad/src/unit_escape.cpp": {"unit-escape": 2},
    "bad/src/obs_registry.cpp": {"obs-name-registry": 4},
    # directory fixture: the handle-storing class lives in poller.hpp, the
    # discarding member fn in poller.cpp — proves the cross-file pass.
    "bad/src/event_lifetime": {"event-lifetime": 2},
    "bad/check_side_effect.cpp": {"check-side-effect": 2},
    "bad/src/span_unclosed.cpp": {"span-unclosed": 3},
    # directory fixture with both src/obs/ and src/check/ catalogs: the
    # whole-project coverage diff must flag the uncovered net::Host.
    "bad/coverage_tree": {"check-coverage": 1},
    "clean/clean.cpp": {},
    "clean/allowed.cpp": {},
    "clean/src/metric_print_clean.cpp": {},
    "clean/src/pool_use_clean.cpp": {},
    "clean/src/meta/path_clean.cpp": {},
    "clean/src/unit_escape_clean.cpp": {},
    "clean/src/obs_registry_clean.cpp": {},
    "clean/src/event_lifetime_clean.cpp": {},
    "clean/check_side_effect_clean.cpp": {},
    "clean/src/span_unclosed_clean.cpp": {},
    "clean/coverage_tree": {},
    # every rule's trigger text inside comments / strings / raw strings:
    # the lexer must keep all rules silent.
    "clean/src/strings_comments.cpp": {},
}

# fixture tree under fixtures/layering/ (has its own layers.toml,
# passed via --layers; scans its src/) -> {rule: count}
LAYERING_EXPECTATIONS = {
    "layering/bad": {"layer-violation": 2, "layer-cycle": 1},
    "layering/clean": {},
}


def run_lint(args: list[str]) -> tuple[int, str]:
    proc = subprocess.run([sys.executable, LINT] + args,
                          stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
    return proc.returncode, proc.stdout.decode()


def findings_by_rule(output: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for line in output.splitlines():
        m = FINDING_RE.match(line)
        if m:
            counts[m.group(3)] = counts.get(m.group(3), 0) + 1
    return counts


def main() -> int:
    t0 = time.monotonic()
    failures = []

    all_rules = run_lint(["--list-rules"])[1].split()
    fired: set[str] = set()

    def check(label: str, argv: list[str], expected: dict[str, int]) -> None:
        code, out = run_lint(argv)
        got = findings_by_rule(out)
        want_exit = 1 if expected else 0
        if code != want_exit:
            failures.append(f"{label}: exit {code}, expected {want_exit}")
        if got != expected:
            failures.append(f"{label}: findings {got}, expected {expected}")
        fired.update(got)
        status = "ok" if got == expected and code == want_exit else "FAIL"
        print(f"selftest: {status}: {label} -> {got or '{}'}")

    for fixture, expected in sorted(EXPECTATIONS.items()):
        check(fixture, ["--root", FIXTURES, fixture], expected)

    for tree, expected in sorted(LAYERING_EXPECTATIONS.items()):
        root = os.path.join(FIXTURES, tree)
        check(tree, ["--root", root,
                     "--layers", os.path.join(root, "layers.toml"), "src"],
              expected)

    # Meta-check: the fixture corpus must exercise every registered rule —
    # a new rule without a firing fixture is itself a failure.
    uncovered = set(all_rules) - fired
    if uncovered:
        failures.append(f"rules with no firing fixture: {sorted(uncovered)}")

    # --rules filtering must narrow the report.
    code, out = run_lint(["--root", FIXTURES, "--rules", "unordered-iter",
                          "bad/unordered_iter.cpp"])
    got = findings_by_rule(out)
    if got != {"unordered-iter": 2}:
        failures.append(f"--rules filter: findings {got}, "
                        f"expected {{'unordered-iter': 2}}")

    # Unknown rule names must be a hard usage error, not silence.
    code, _ = run_lint(["--root", FIXTURES, "--rules", "no-such-rule",
                        "clean/clean.cpp"])
    if code != 2:
        failures.append(f"unknown rule: exit {code}, expected 2")

    with tempfile.TemporaryDirectory(prefix="gtw-lint-selftest.") as tmp:
        # --json must emit SARIF 2.1.0 whose result count matches stdout.
        sarif_path = os.path.join(tmp, "findings.sarif")
        code, out = run_lint(["--root", FIXTURES, "--json", sarif_path,
                              "bad/src/obs_registry.cpp"])
        n_stdout = sum(findings_by_rule(out).values())
        try:
            with open(sarif_path, encoding="utf-8") as f:
                sarif = json.load(f)
            results = sarif["runs"][0]["results"]
            rules = {r["id"] for r in
                     sarif["runs"][0]["tool"]["driver"]["rules"]}
            if len(results) != n_stdout or n_stdout == 0:
                failures.append(f"--json: {len(results)} SARIF results, "
                                f"{n_stdout} stdout findings")
            if not {r["ruleId"] for r in results} <= rules:
                failures.append("--json: result ruleId missing from "
                                "tool.driver.rules")
        except (OSError, KeyError, ValueError) as e:
            failures.append(f"--json: bad SARIF output: {e}")
        print(f"selftest: {'FAIL' if failures and failures[-1].startswith('--json') else 'ok'}: "
              f"--json SARIF round trip")

        # Obs catalog: emit then check against itself must pass; a doctored
        # catalog must be flagged as drift (exit 1).
        cat_path = os.path.join(tmp, "obs_catalog.json")
        run_lint(["--root", FIXTURES, "--emit-obs-catalog", cat_path,
                  "clean/src/obs_registry_clean.cpp"])
        code, _ = run_lint(["--root", FIXTURES, "--check-obs-catalog",
                            cat_path, "clean/src/obs_registry_clean.cpp"])
        if code != 0:
            failures.append(f"obs catalog self-check: exit {code}, "
                            "expected 0")
        with open(cat_path, encoding="utf-8") as f:
            cat = json.load(f)
        cat["metrics"] = cat["metrics"][1:]  # drop one metric -> drift
        with open(cat_path, "w", encoding="utf-8") as f:
            json.dump(cat, f)
        code, _ = run_lint(["--root", FIXTURES, "--check-obs-catalog",
                            cat_path, "clean/src/obs_registry_clean.cpp"])
        if code != 1:
            failures.append(f"obs catalog drift: exit {code}, expected 1")
        print(f"selftest: ok: obs catalog emit/check round trip"
              if code == 1 else
              f"selftest: FAIL: obs catalog emit/check round trip")

    for f in failures:
        print(f"selftest: FAIL: {f}")
    n_cases = len(EXPECTATIONS) + len(LAYERING_EXPECTATIONS)
    elapsed = time.monotonic() - t0
    print(f"selftest: {n_cases} fixtures, {len(failures)} failure(s), "
          f"runtime {elapsed:.2f}s")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
