#!/usr/bin/env python3
"""Self-test for gtw-lint: every rule must fire on its known-bad fixture
and stay silent on clean (and allow-annotated) code.

Runs gtw_lint.py as a subprocess against each fixture in
tools/lint/fixtures/ and compares the set of (rule, count) findings with
the expectation table below.  Registered as the `gtw_lint_selftest` ctest.

Exit status: 0 all expectations met, 1 otherwise.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "gtw_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

FINDING_RE = re.compile(r"^(.*?):(\d+): \[([\w-]+)\] ")

# fixture (relative to fixtures/) -> {rule: expected finding count}
EXPECTATIONS = {
    "bad/unordered_container.cpp": {"unordered-container": 1},
    "bad/unordered_iter.cpp": {"unordered-container": 1, "unordered-iter": 2},
    "bad/raw_entropy.cpp": {"raw-entropy": 4},
    "bad/wall_clock.cpp": {"wall-clock": 3},
    "bad/pointer_order.cpp": {"pointer-order": 3},
    "bad/past_schedule.cpp": {"past-schedule": 2},
    "bad/raw_rate_double.cpp": {"raw-rate-double": 4},
    "bad/net/unitless_size_param.cpp": {"unitless-size-param": 2},
    "bad/src/raw_metric_print.cpp": {"raw-metric-print": 4},
    "bad/src/pool_bypass_new.cpp": {"pool-bypass-new": 4},
    "bad/src/meta/raw_tcp.cpp": {"meta-raw-tcp": 4},
    "clean/clean.cpp": {},
    "clean/allowed.cpp": {},
    "clean/src/metric_print_clean.cpp": {},
    "clean/src/pool_use_clean.cpp": {},
    "clean/src/meta/path_clean.cpp": {},
}


def run_lint(args: list[str]) -> tuple[int, str]:
    proc = subprocess.run([sys.executable, LINT] + args,
                          stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
    return proc.returncode, proc.stdout.decode()


def findings_by_rule(output: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for line in output.splitlines():
        m = FINDING_RE.match(line)
        if m:
            counts[m.group(3)] = counts.get(m.group(3), 0) + 1
    return counts


def main() -> int:
    failures = []

    all_rules = run_lint(["--list-rules"])[1].split()
    fired: set[str] = set()

    for fixture, expected in sorted(EXPECTATIONS.items()):
        code, out = run_lint(["--root", FIXTURES, fixture])
        got = findings_by_rule(out)
        want_exit = 1 if expected else 0
        if code != want_exit:
            failures.append(f"{fixture}: exit {code}, expected {want_exit}")
        if got != expected:
            failures.append(f"{fixture}: findings {got}, expected {expected}")
        fired |= set(got)
        status = "ok" if got == expected and code == want_exit else "FAIL"
        print(f"selftest: {status}: {fixture} -> {got or '{}'}")

    # Meta-check: the fixture corpus must exercise every registered rule —
    # a new rule without a firing fixture is itself a failure.
    uncovered = set(all_rules) - fired
    if uncovered:
        failures.append(f"rules with no firing fixture: {sorted(uncovered)}")

    # --rules filtering must narrow the report.
    code, out = run_lint(["--root", FIXTURES, "--rules", "unordered-iter",
                          "bad/unordered_iter.cpp"])
    got = findings_by_rule(out)
    if got != {"unordered-iter": 2}:
        failures.append(f"--rules filter: findings {got}, "
                        f"expected {{'unordered-iter': 2}}")

    # Unknown rule names must be a hard usage error, not silence.
    code, _ = run_lint(["--root", FIXTURES, "--rules", "no-such-rule",
                        "clean/clean.cpp"])
    if code != 2:
        failures.append(f"unknown rule: exit {code}, expected 2")

    for f in failures:
        print(f"selftest: FAIL: {f}")
    print(f"selftest: {len(EXPECTATIONS)} fixtures, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
