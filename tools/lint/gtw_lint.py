#!/usr/bin/env python3
"""gtw-lint v2: determinism & simulation-correctness checker for the testbed.

Every reproduced number in this repo rests on the claim that the DES is a
pure function of its inputs and seeds, layered the way DESIGN.md says it is.
gtw-lint encodes those claims as machine-checked source rules.

v2 replaces the line-regex scanner with a real C++ token stream: a small
hand-written lexer strips comments, string/char literals and raw strings
(including multi-line R"( ... )" bodies) and yields identifiers, numbers and
punctuation with file:line spans.  Rules match token sequences, so they no
longer fire inside string literals or comments, and they see constructs the
line regexes missed (multi-line declarations, uppercase exponents, calls
split across lines).  On top of the per-file rules, a whole-project pass
runs after scanning to check cross-file invariants.

Per-file rules
--------------
  unordered-container   std::unordered_{map,set,multimap,multiset} declared
                        in simulator code.  Iteration order is unspecified
                        and varies across libstdc++ versions and hash seeds.
                        Use std::map/std::set, or a vector sorted on a
                        stable key.
  unordered-iter        Iteration (range-for, or .begin()/iterator walk)
                        over a name declared as an unordered container in
                        the same file.
  raw-entropy           rand()/srand()/random()/drand48()/lrand48()/
                        std::random_device/std::mt19937 outside des/random.
                        All randomness must flow through the seeded des::Rng.
  wall-clock            std::chrono::{system,steady,high_resolution}_clock,
                        time(...), clock(), gettimeofday, clock_gettime
                        outside des/time.  Simulated time comes from
                        des::Scheduler::now().
  pointer-order         Ordering or hashing on raw pointer values
                        (std::map/std::set keyed on T*, std::hash<T*>).
                        Addresses vary run to run; key on stable ids.
  past-schedule         Textually negative schedule targets:
                        schedule_after(-x) or schedule_at(now() - x).
  raw-rate-double       A `double`/`float` variable suffixed _bps/_Bps, or a
                        bare e6/e9 scientific literal forming a rate on a
                        line that talks about rates/bandwidth, outside
                        src/units/.  Construct units::BitRate/ByteRate.
  unitless-size-param   A function parameter spelled `uint32_t/uint64_t
                        ...bytes...` in src/net/.  Sizes crossing the net
                        API boundary must be units::Bytes.
  raw-metric-print      std::cout / printf / fprintf(stdout) / puts in
                        src/.  Metrics leave the simulator through the
                        stable-ordered obs exporters or returned strings.
  pool-bypass-new       `new`/make_unique/make_shared of an event or packet
                        record (Entry, Frame, IpPacket) in src/.  These live
                        in des::SlabPool arenas (DESIGN.md par. 10).
  meta-raw-tcp          `TcpConnection` named in src/meta/ outside
                        path_transport.  The meta layer reaches the WAN
                        through meta::PathTransport only.
  check-side-effect     A mutating expression (assignment, ++/--, compound
                        assignment) inside the argument of a GTW_CHECK_HOOK(
                        ...) invocation.  Hook sites must observe, never
                        steer: anything they mutate exists only in checked
                        builds, so a side effect here makes the checked and
                        unchecked builds simulate different worlds.  Checker-
                        private state maintenance belongs in an explicit
                        `#if defined(GTW_CHECK)` block, not in the macro.
  span-unclosed         (src/ outside src/obs/)  A member call to
                        begin_span() or mint() whose returned span id /
                        TraceContext is discarded.  A lost id can never be
                        ended, aborted or closed, so the leak surfaces only
                        as a failed drain census (obs.span.leak) long after
                        the offending line; store the result and retire it
                        on every exit path.
  unit-escape           A `.value()`/`.count()` extraction whose result
                        flows, on the same statement, back into a units::
                        construction or unit factory — in src/ outside
                        src/units/ (which owns the raw representation;
                        tests/benches legitimately assert on raw scalars).
                        Round-tripping through the raw scalar is how unit
                        bugs re-enter; use the typed operator set instead
                        (`window / 2`, `units::per(bytes.to_bits(), dt)`).

Whole-project rules (run after per-file scanning)
-------------------------------------------------
  layer-violation       An `#include "mod/..."` edge between src/ modules
                        that the declared module DAG (tools/lint/layers.toml)
                        does not allow, or a src/ module missing from the
                        declaration entirely.
  layer-cycle           A cycle in the observed module include graph,
                        reported with a full include chain of file:line
                        witnesses.  (The declared DAG itself is validated
                        acyclic at load time.)
  obs-name-registry     Every dotted-name string literal registered through
                        counter()/gauge()/histogram()/probe_counter()/
                        probe_gauge() is collected tree-wide (src/ only).
                        The same leaf name registered with two different
                        instrument kinds, or two names differing only by
                        case, is a wiring bug.  The collected names form a
                        catalog (--emit-obs-catalog) that a ctest diffs
                        against the committed tools/lint/obs_catalog.json,
                        so new metrics must be cataloged in-diff.
  check-coverage        Component types taken by instrument_*/bridge_*/
                        attach_* functions in src/obs/ are diffed against
                        the types taken by attach_* functions in src/check/:
                        a component observable through the obs catalog but
                        absent from the GTW-San attach catalog is a coverage
                        hole — every instrumented component must also be
                        checkable.  Runs only when the scan includes
                        src/check/ files, so partial-tree scans stay silent.
  event-lifetime        (src/ only)  A schedule_after()/schedule_at() whose
                        returned EventHandle is discarded inside a member
                        function of a class that elsewhere stores handles —
                        the timer-leak pattern: the class clearly intends to
                        manage lifetimes, and an unsaved handle cannot be
                        cancelled on teardown.  Also a `[&]`-capture lambda
                        passed to a delayed schedule from a non-member
                        (free-function) scope — the dangling-capture
                        pattern: the locals it captures by reference are
                        dead by the time the event fires unless the caller
                        provably outlives the scheduler run.

Suppression: append `// gtw-lint: allow(<rule>[, <rule>...])` to the
offending line, or place it alone on the line above, and say why.
Allowlist annotations are grep-able, so every exception is visible in-diff.
`--fix-allowlist` prints ready-to-paste annotation lines for triaged
findings (each carries a TODO(justify) stub that review must fill in).

Output: human-readable findings by default; `--json FILE` additionally
writes a SARIF 2.1.0 log for CI inline annotations; `--summary` appends a
one-line per-rule hit count.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
No dependencies beyond the Python standard library.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

SOURCE_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".h")

ALLOW_RE = re.compile(r"//\s*gtw-lint:\s*allow\(([^)]*)\)")

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------
#
# A deliberately small hand-written C++ lexer.  It is not a full phase-3
# translator: its contract is (a) comments and literal *contents* never
# reach the rule matchers, (b) every token carries the 1-based line it
# started on, (c) multi-character operators that rules reason about
# (::, ->, ==, ...) arrive as single tokens so `=` means assignment.

ID_RE = re.compile(r"[A-Za-z_]\w*")
# pp-number: digits with optional ' separators, suffixes, and exponents.
NUM_RE = re.compile(r"\.?\d(?:'[\da-fA-F]|[eEpP][+-]|[\w.])*")
RAW_STR_RE = re.compile(r'(?:u8|[uUL])?R"([^ ()\\\t\r\n]*)\(')
STR_PREFIX_RE = re.compile(r'(?:u8|[uUL])?"')

PUNCT3 = ("<=>", "<<=", ">>=", "...", "->*")
PUNCT2 = ("::", "->", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
          "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "++", "--", ".*")


@dataclass
class Token:
    kind: str   # 'id' | 'num' | 'str' | 'chr' | 'punct'
    text: str   # literal text (for 'str': the decoded-ish content)
    line: int   # 1-based line the token starts on

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.kind}:{self.text}@{self.line}"


def lex(text: str) -> list[Token]:
    toks: list[Token] = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n:
            nxt = text[i + 1]
            if nxt == "/":
                j = text.find("\n", i)
                i = n if j == -1 else j
                continue
            if nxt == "*":
                j = text.find("*/", i + 2)
                if j == -1:
                    line += text.count("\n", i)
                    i = n
                else:
                    line += text.count("\n", i, j + 2)
                    i = j + 2
                continue
        if c in "RuUL":  # possible raw / prefixed string
            m = RAW_STR_RE.match(text, i)
            if m:
                delim = m.group(1)
                close = ")" + delim + '"'
                j = text.find(close, m.end())
                start = line
                if j == -1:
                    content = text[m.end():]
                    line += text.count("\n", i)
                    i = n
                else:
                    content = text[m.end():j]
                    line += text.count("\n", i, j + len(close))
                    i = j + len(close)
                toks.append(Token("str", content, start))
                continue
        m = STR_PREFIX_RE.match(text, i)
        if m:
            j = m.end()
            buf = []
            while j < n and text[j] not in '"\n':
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j:j + 2])
                    j += 2
                else:
                    buf.append(text[j])
                    j += 1
            toks.append(Token("str", "".join(buf), line))
            i = j + 1 if j < n and text[j] == '"' else j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = NUM_RE.match(text, i)
            toks.append(Token("num", m.group(0), line))
            i = m.end()
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] not in "'\n":
                j += 2 if text[j] == "\\" else 1
            toks.append(Token("chr", text[i + 1:j], line))
            i = j + 1 if j < n and text[j] == "'" else j
            continue
        if c.isalpha() or c == "_":
            m = ID_RE.match(text, i)
            toks.append(Token("id", m.group(0), line))
            i = m.end()
            continue
        three = text[i:i + 3]
        if three in PUNCT3:
            toks.append(Token("punct", three, line))
            i += 3
            continue
        two = text[i:i + 2]
        if two in PUNCT2:
            toks.append(Token("punct", two, line))
            i += 2
            continue
        toks.append(Token("punct", c, line))
        i += 1
    return toks


# ---------------------------------------------------------------------------
# Source file model
# ---------------------------------------------------------------------------

@dataclass
class SourceFile:
    path: str
    relpath: str
    raw_lines: list[str]
    tokens: list[Token]
    allows: dict[int, set[str]] = field(default_factory=dict)
    # #include "..." directives as (line, include_path)
    includes: list[tuple[int, str]] = field(default_factory=list)


def collect_allows(lines: list[str]) -> dict[int, set[str]]:
    """Map line number (1-based) -> set of rules allowed on that line.

    An annotation on a comment-only line (no code before the `//`) also
    covers the line directly below it, so it can sit above the construct it
    excuses and carry a trailing justification, e.g.
    `// gtw-lint: allow(unit-escape) — conversion boundary`.
    """
    allows: dict[int, set[str]] = {}
    for idx, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        allows.setdefault(idx, set()).update(rules)
        if line[:m.start()].strip() == "":
            allows.setdefault(idx + 1, set()).update(rules)
    return allows


def collect_includes(toks: list[Token]) -> list[tuple[int, str]]:
    """Extract `#include "path"` directives from the token stream."""
    out = []
    for k in range(len(toks) - 2):
        if (toks[k].kind == "punct" and toks[k].text == "#"
                and toks[k + 1].kind == "id" and toks[k + 1].text == "include"
                and toks[k + 2].kind == "str"):
            out.append((toks[k].line, toks[k + 2].text))
    return out


def load_source(path: str, relpath: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    toks = lex(text)
    sf = SourceFile(path, relpath, raw_lines, toks)
    sf.allows = collect_allows(raw_lines)
    sf.includes = collect_includes(toks)
    return sf


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Reporter:
    """Collects findings, honouring per-line allow() annotations."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []

    def report(self, sf: SourceFile, line: int, rule: str, msg: str) -> None:
        if rule in sf.allows.get(line, ()):  # suppressed in-diff
            return
        self.findings.append(Finding(sf.relpath, line, rule, msg))


def in_module(relpath: str, *parts: str) -> bool:
    norm = relpath.replace(os.sep, "/")
    return any(p in norm for p in parts)


# ---------------------------------------------------------------------------
# Token helpers
# ---------------------------------------------------------------------------

MEMBER_PREFIX = {".", "->", "::"}


def is_id(t: Token, *names: str) -> bool:
    return t.kind == "id" and t.text in names


def is_p(t: Token, *texts: str) -> bool:
    return t.kind == "punct" and t.text in texts


def prev_tok(toks: list[Token], i: int) -> Token | None:
    return toks[i - 1] if i > 0 else None


def is_member_access(toks: list[Token], i: int) -> bool:
    """True if token i is reached through . / -> / :: (a qualified name)."""
    p = prev_tok(toks, i)
    return p is not None and p.kind == "punct" and p.text in MEMBER_PREFIX


def matching_close(toks: list[Token], i: int,
                   open_: str, close: str) -> int | None:
    """Index of the bracket matching toks[i] (which must be `open_`)."""
    depth = 0
    for k in range(i, len(toks)):
        if is_p(toks[k], open_):
            depth += 1
        elif is_p(toks[k], close):
            depth -= 1
            if depth == 0:
                return k
    return None


def template_close(toks: list[Token], i: int) -> int | None:
    """Index of the `>` matching the `<` at i (treating >> as two >)."""
    depth = 0
    for k in range(i, len(toks)):
        t = toks[k]
        if is_p(t, "<"):
            depth += 1
        elif is_p(t, ">"):
            depth -= 1
            if depth == 0:
                return k
        elif is_p(t, ">>"):
            depth -= 2
            if depth <= 0:
                return k
        elif is_p(t, ";"):  # never inside a type we care about
            return None
    return None


def statement_start(toks: list[Token], i: int) -> int:
    """Index of the first token of the statement containing toks[i]."""
    k = i - 1
    while k >= 0:
        if is_p(toks[k], ";", "{", "}"):
            return k + 1
        k -= 1
    return 0


# ---------------------------------------------------------------------------
# Per-file rules (token-stream matchers)
# ---------------------------------------------------------------------------

UNORDERED = ("unordered_map", "unordered_set",
             "unordered_multimap", "unordered_multiset")
ENTROPY_CALLS = ("rand", "srand", "random", "srandom",
                 "drand48", "lrand48", "rand_r")
CLOCK_IDS = ("system_clock", "steady_clock", "high_resolution_clock")
ORDERED_ASSOC = ("map", "set", "multimap", "multiset")
POOLED_TYPES = ("Entry", "Frame", "IpPacket")
UNIT_TYPES = ("Bytes", "Bits", "Cells", "Ops",
              "BitRate", "ByteRate", "OpRate")

MUTATING_OPS = ("=", "++", "--", "+=", "-=", "*=", "/=", "%=",
                "&=", "|=", "^=", "<<=", ">>=")

RATE_NAME_RE = re.compile(r"\w*_(?:bps|Bps)$")
# Scientific literal whose exponent normalizes to 6 or 9 (1E6, 2.4e+09, ...).
SCI_RATE_RE = re.compile(r"^\d+(?:\.\d+)?[eE]\+?0*([69])$")
RATE_CONTEXT_RE = re.compile(
    r"rate|bandwidth|bps|goodput|throughput|line", re.IGNORECASE)
BYTES_NAME_RE = re.compile(r"\w*bytes\w*")


def check_per_file(sf: SourceFile, rep: Reporter) -> None:
    toks = sf.tokens
    relpath = sf.relpath

    # des/random owns entropy; des/time legitimately names clocks.
    entropy_exempt = in_module(relpath, "des/random")
    clock_exempt = in_module(relpath, "des/time", "des/random")
    # src/units/ defines the unit types themselves and so legitimately
    # multiplies by 1e6/1e9 inside the factories (and reads .count()).
    rate_exempt = in_module(relpath, "src/units", "units/units")
    # unit-escape polices library code; tests/benches legitimately read raw
    # scalars to assert on them, and src/units/ owns the raw representation.
    unit_escape_guard = (in_module(relpath, "src/")
                        and not in_module(relpath, "src/units/"))
    net_boundary = in_module(relpath, "net/")
    library_code = in_module(relpath, "src/")
    meta_wan_guard = (in_module(relpath, "src/meta/")
                      and not in_module(relpath, "path_transport"))
    # span-unclosed polices the *producers* of spans; src/obs/ implements
    # the tracer itself (its methods legitimately manipulate raw ids).
    span_guard = (in_module(relpath, "src/")
                  and not in_module(relpath, "src/obs/"))

    # Group tokens by line for the line-context checks raw-rate-double needs.
    line_toks: dict[int, list[Token]] = {}
    for t in toks:
        line_toks.setdefault(t.line, []).append(t)

    def line_text(lineno: int) -> str:
        return " ".join(t.text for t in line_toks.get(lineno, ()))

    def line_has_typed_rate(lineno: int) -> bool:
        lt = line_toks.get(lineno, ())
        for k, t in enumerate(lt):
            if is_id(t, "BitRate", "ByteRate", "OpRate", "units"):
                return True
            if (is_p(t, ".") and k + 2 < len(lt)
                    and is_id(lt[k + 1], "bps", "kbps", "mbps", "gbps")
                    and is_p(lt[k + 2], "(")):
                return True
        return False

    unordered_names: set[str] = set()

    # ---- single forward scan for the sequence-anchored rules -------------
    for i, t in enumerate(toks):
        # std :: <something>
        if is_id(t, "std") and i + 2 < len(toks) and is_p(toks[i + 1], "::"):
            head = toks[i + 2]
            if head.kind == "id" and head.text in UNORDERED:
                rep.report(sf, t.line, "unordered-container",
                           "unordered container in simulator code: iteration "
                           "order is unspecified and varies run-to-run; use "
                           "std::map/std::set or a sorted vector (or annotate "
                           "why ordering can never escape)")
                # Track the declared name (possibly multi-line) so
                # unordered-iter can flag walks over it.
                if i + 3 < len(toks) and is_p(toks[i + 3], "<"):
                    close = template_close(toks, i + 3)
                    if (close is not None and close + 2 < len(toks)
                            and toks[close + 1].kind == "id"
                            and is_p(toks[close + 2], ";", "=", "{")):
                        unordered_names.add(toks[close + 1].text)
            if (head.kind == "id" and head.text in ORDERED_ASSOC
                    and i + 3 < len(toks) and is_p(toks[i + 3], "<")):
                # pointer-order: first template argument ends in `*`.
                k, depth = i + 4, 1
                last_real = None
                while k < len(toks):
                    tk = toks[k]
                    if is_p(tk, "<"):
                        depth += 1
                    elif is_p(tk, ">", ">>"):
                        depth -= 2 if tk.text == ">>" else 1
                        if depth <= 0:
                            break
                    elif is_p(tk, ",") and depth == 1:
                        break
                    elif is_p(tk, ";"):
                        break
                    if not is_p(tk, ">", ">>"):
                        last_real = tk
                    k += 1
                if last_real is not None and is_p(last_real, "*"):
                    rep.report(sf, t.line, "pointer-order",
                               "ordering/hashing on raw pointer values: "
                               "addresses vary run-to-run (allocator, ASLR) "
                               "and must not feed event order; key on a "
                               "stable id instead")
            if (head.kind == "id" and head.text in ("hash", "less")
                    and i + 3 < len(toks) and is_p(toks[i + 3], "<")):
                close = template_close(toks, i + 3)
                if (close is not None and close >= 1
                        and is_p(toks[close - 1], "*")):
                    rep.report(sf, t.line, "pointer-order",
                               "ordering/hashing on raw pointer values: "
                               "addresses vary run-to-run (allocator, ASLR) "
                               "and must not feed event order; key on a "
                               "stable id instead")
            if not entropy_exempt and is_id(head, "random_device",
                                            "mt19937", "mt19937_64"):
                rep.report(sf, t.line, "raw-entropy",
                           "raw entropy source outside des::random; all "
                           "simulator randomness must flow through the "
                           "seeded des::Rng")
            if library_code and is_id(head, "cout"):
                rep.report(sf, t.line, "raw-metric-print",
                           "direct stdout printing in library code; metrics "
                           "leave the simulator through the obs exporters "
                           "(write_metrics_json/csv, write_chrome_trace) or "
                           "as a returned string the caller prints")

        if t.kind != "id":
            continue
        nxt = toks[i + 1] if i + 1 < len(toks) else None

        # Unqualified calls.
        if (nxt is not None and is_p(nxt, "(")
                and not is_member_access(toks, i)):
            if not entropy_exempt and t.text in ENTROPY_CALLS:
                rep.report(sf, t.line, "raw-entropy",
                           "raw entropy source outside des::random; all "
                           "simulator randomness must flow through the "
                           "seeded des::Rng")
            if not clock_exempt:
                if t.text in ("gettimeofday", "clock_gettime"):
                    rep.report(sf, t.line, "wall-clock",
                               "wall-clock time in simulator code; simulated "
                               "time comes from des::Scheduler::now()")
                elif (t.text == "time" and i + 2 < len(toks)
                      and (is_id(toks[i + 2], "NULL", "nullptr")
                           or (toks[i + 2].kind == "num"
                               and toks[i + 2].text == "0")
                           or is_p(toks[i + 2], "&"))):
                    rep.report(sf, t.line, "wall-clock",
                               "wall-clock time in simulator code; simulated "
                               "time comes from des::Scheduler::now()")
                elif (t.text == "clock" and i + 2 < len(toks)
                      and is_p(toks[i + 2], ")")):
                    rep.report(sf, t.line, "wall-clock",
                               "wall-clock time in simulator code; simulated "
                               "time comes from des::Scheduler::now()")
            if library_code and t.text in ("printf", "puts"):
                rep.report(sf, t.line, "raw-metric-print",
                           "direct stdout printing in library code; metrics "
                           "leave the simulator through the obs exporters "
                           "(write_metrics_json/csv, write_chrome_trace) or "
                           "as a returned string the caller prints")
            if (library_code and t.text == "fprintf" and i + 2 < len(toks)
                    and is_id(toks[i + 2], "stdout")):
                rep.report(sf, t.line, "raw-metric-print",
                           "direct stdout printing in library code; metrics "
                           "leave the simulator through the obs exporters "
                           "(write_metrics_json/csv, write_chrome_trace) or "
                           "as a returned string the caller prints")

        # Bare clock type names (with or without std::chrono:: qualifier).
        if not clock_exempt and t.text in CLOCK_IDS:
            rep.report(sf, t.line, "wall-clock",
                       "wall-clock time in simulator code; simulated time "
                       "comes from des::Scheduler::now()")

        # past-schedule.
        if t.text in ("schedule_after", "schedule_at") and nxt is not None \
                and is_p(nxt, "("):
            if t.text == "schedule_after" and i + 2 < len(toks) \
                    and is_p(toks[i + 2], "-"):
                rep.report(sf, t.line, "past-schedule",
                           "event scheduled before the current DES clock; "
                           "targets must be >= now()")
            if t.text == "schedule_at":
                close = matching_close(toks, i + 1, "(", ")")
                if close is not None:
                    for k in range(i + 2, close - 2):
                        if (is_id(toks[k], "now") and is_p(toks[k + 1], "(")
                                and is_p(toks[k + 2], ")")
                                and k + 3 < len(toks)
                                and is_p(toks[k + 3], "-")):
                            rep.report(sf, t.line, "past-schedule",
                                       "event scheduled before the current "
                                       "DES clock; targets must be >= now()")
                            break

        # raw-rate-double: declaration form.
        if (not rate_exempt and t.text in ("double", "float")
                and nxt is not None and nxt.kind == "id"
                and RATE_NAME_RE.match(nxt.text)):
            rep.report(sf, t.line, "raw-rate-double",
                       "raw floating-point rate variable; use units::BitRate"
                       " / units::ByteRate so bits and bytes cannot be "
                       "confused at a call site")

        # unitless-size-param.
        if net_boundary and t.text in ("uint32_t", "uint64_t") \
                and nxt is not None and nxt.kind == "id" \
                and BYTES_NAME_RE.match(nxt.text) and "bytes" in nxt.text:
            p = prev_tok(toks, i)
            if p is not None and is_p(p, "::"):
                p = toks[i - 3] if i >= 3 else None  # skip std ::
            if p is not None and is_p(p, "(", ","):
                rep.report(sf, t.line, "unitless-size-param",
                           "unitless byte-count parameter on a net API; take "
                           "units::Bytes so the caller cannot pass bits or "
                           "cells")

        # pool-bypass-new: new [ns::]Type
        if library_code and t.text == "new" \
                and not is_member_access(toks, i):
            k = i + 1
            last_id = None
            while k < len(toks) and (toks[k].kind == "id"
                                     or is_p(toks[k], "::")):
                if toks[k].kind == "id":
                    last_id = toks[k].text
                k += 1
            if last_id in POOLED_TYPES:
                rep.report(sf, t.line, "pool-bypass-new",
                           "heap allocation of a pooled event/packet record; "
                           "the per-event hot path is allocation-free — "
                           "acquire slots from the owning des::SlabPool "
                           "instead")
        if library_code and t.text in ("make_unique", "make_shared") \
                and nxt is not None and is_p(nxt, "<"):
            close = template_close(toks, i + 1)
            if close is not None:
                last_id = None
                for k in range(i + 2, close):
                    if toks[k].kind == "id":
                        last_id = toks[k].text
                    elif not is_p(toks[k], "::"):
                        last_id = last_id  # arrays: `Entry[]` keeps the id
                if last_id in POOLED_TYPES:
                    rep.report(sf, t.line, "pool-bypass-new",
                               "heap allocation of a pooled event/packet "
                               "record; the per-event hot path is "
                               "allocation-free — acquire slots from the "
                               "owning des::SlabPool instead")

        # meta-raw-tcp.
        if meta_wan_guard and t.text == "TcpConnection":
            rep.report(sf, t.line, "meta-raw-tcp",
                       "raw TcpConnection in src/meta/ outside PathTransport; "
                       "the meta layer's WAN traffic goes through "
                       "meta::PathTransport (a pass-through PathConfig keeps "
                       "single-stream behaviour byte-identical)")

    # ---- raw-rate-double: scientific-literal form ------------------------
    if not rate_exempt:
        for i, t in enumerate(toks):
            if t.kind != "num":
                continue
            m = SCI_RATE_RE.match(t.text)
            if not m:
                continue
            bare_one = re.match(r"^1[eE]\+?0*[69]$", t.text) is not None
            p = prev_tok(toks, i)
            scaled = p is not None and is_p(p, "*")
            if bare_one and not scaled:
                continue  # `x / 1e6` pretty-printing stays legal
            if not RATE_CONTEXT_RE.search(line_text(t.line)):
                continue
            if line_has_typed_rate(t.line):
                continue
            rep.report(sf, t.line, "raw-rate-double",
                       "bare e6/e9 literal forming a rate; construct it "
                       "through units::BitRate::mbps()/gbps() (or the named "
                       "net::kOc*Line constants) instead")

    # ---- unordered-iter --------------------------------------------------
    if unordered_names:
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text in unordered_names:
                nxt = toks[i + 1] if i + 1 < len(toks) else None
                # name . begin|cbegin|rbegin (
                if (nxt is not None and is_p(nxt, ".") and i + 3 < len(toks)
                        and is_id(toks[i + 2], "begin", "cbegin", "rbegin")
                        and is_p(toks[i + 3], "(")):
                    rep.report(sf, t.line, "unordered-iter",
                               f"iteration over unordered container "
                               f"'{t.text}': visit order is unspecified and "
                               "will diverge between runs; sort on a stable "
                               "key first")
                # for ( ... : name )
                if (nxt is not None and is_p(nxt, ")") and i >= 1
                        and is_p(toks[i - 1], ":")):
                    k = i - 2
                    ok = False
                    while k >= 0:
                        if is_p(toks[k], ";", "{", "}"):
                            break
                        if is_id(toks[k], "for"):
                            ok = True
                            break
                        k -= 1
                    if ok:
                        rep.report(sf, t.line, "unordered-iter",
                                   f"iteration over unordered container "
                                   f"'{t.text}': visit order is unspecified "
                                   "and will diverge between runs; sort on a "
                                   "stable key first")

    # ---- check-side-effect ----------------------------------------------
    for i, t in enumerate(toks):
        if not is_id(t, "GTW_CHECK_HOOK"):
            continue
        if i + 1 >= len(toks) or not is_p(toks[i + 1], "("):
            continue
        p = prev_tok(toks, i)
        if p is not None and is_id(p, "define"):
            continue  # the macro's own #define, not an invocation
        close = matching_close(toks, i + 1, "(", ")")
        if close is None:
            continue
        for k in range(i + 2, close):
            tk = toks[k]
            if tk.kind == "punct" and tk.text in MUTATING_OPS:
                rep.report(sf, tk.line, "check-side-effect",
                           f"mutating '{tk.text}' inside a GTW_CHECK_HOOK "
                           "argument: hooks must observe, never steer — a "
                           "side effect here exists only in checked builds, "
                           "so checked and unchecked runs simulate different "
                           "worlds; move checker-state maintenance into an "
                           "explicit #if defined(GTW_CHECK) block")

    # ---- span-unclosed ---------------------------------------------------
    # begin_span() returns the span id; mint() returns the TraceContext.
    # Discarding either is a guaranteed leak: the span can never be ended
    # or aborted, the trace never closed, and the GTW_CHECK drain census
    # (obs.span.leak) will fire long after the offending line ran.  Catch
    # it at the call site instead.  Member-access requirement skips the
    # SpanTracer definitions themselves (SpanTracer::begin_span).
    if span_guard:
        for i, t in enumerate(toks):
            if not is_id(t, "begin_span", "mint"):
                continue
            if i + 1 >= len(toks) or not is_p(toks[i + 1], "("):
                continue
            if not is_member_access(toks, i):
                continue
            s = statement_start(toks, i)
            consumed = False
            depth = 0
            for k in range(s, i):
                tk = toks[k]
                if is_p(tk, "=") or is_id(tk, "return") \
                        or (tk.kind == "punct" and tk.text.endswith("=")
                            and tk.text not in ("==", "!=", "<=", ">=")):
                    consumed = True
                    break
                if is_p(tk, "(", "[", "{"):
                    depth += 1
                elif is_p(tk, ")", "]", "}"):
                    depth -= 1
            if depth > 0:  # inside an argument list: result is consumed
                consumed = True
            if not consumed:
                what = ("span id" if t.text == "begin_span"
                        else "TraceContext")
                rep.report(
                    sf, t.line, "span-unclosed",
                    f"returned {what} from {t.text}() discarded; a span "
                    "whose id is lost can never be ended or aborted and "
                    "will trip the drain leak census — store the result "
                    "and close it on every exit path (or annotate why "
                    "another owner retires it)")

    # ---- unit-escape -----------------------------------------------------
    if unit_escape_guard:
        check_unit_escape(sf, rep)


def _is_stmt_boundary(toks: list[Token], i: int) -> bool:
    t = toks[i]
    if is_p(t, ";", "}"):
        return True
    if is_p(t, "{"):
        # Block braces end a statement; brace-init lists (`Bytes{n}`,
        # `= {...}`, `push_back({...})`) do not.
        p = prev_tok(toks, i)
        return (p is None or is_p(p, ")", ";", "{", "}")
                or is_id(p, "else", "do", "try"))
    return False


def check_unit_escape(sf: SourceFile, rep: Reporter) -> None:
    """Flag statements where a .value()/.count() raw extraction flows back
    into a units:: construction or unit-type factory on the same statement."""
    toks = sf.tokens
    start = 0
    for i in range(len(toks) + 1):
        if i < len(toks) and not _is_stmt_boundary(toks, i):
            continue
        stmt = toks[start:i + 1]  # keep the closing token: `Bytes{x.count()}`
        start = i + 1
        extract_line = None
        reenters = False
        for k, t in enumerate(stmt):
            if (is_p(t, ".", "->") and k + 3 < len(stmt)
                    and is_id(stmt[k + 1], "value", "count")
                    and is_p(stmt[k + 2], "(") and is_p(stmt[k + 3], ")")):
                extract_line = extract_line or stmt[k + 1].line
            # A unit *construction* (not a parameter/member declaration):
            # units::Bytes{...}, units::Bytes(...), units::BitRate::bps(...),
            # or the same spellings without the units:: qualifier.
            head = k
            if is_id(t, "units") and k + 2 < len(stmt) \
                    and is_p(stmt[k + 1], "::"):
                head = k + 2
            th = stmt[head]
            if th.kind == "id" and th.text in UNIT_TYPES \
                    and head + 1 < len(stmt):
                after = stmt[head + 1]
                if is_p(after, "{", "("):
                    reenters = True
                elif (is_p(after, "::") and head + 3 < len(stmt)
                      and stmt[head + 2].kind == "id"
                      and is_p(stmt[head + 3], "(")):
                    reenters = True
        if extract_line is not None and reenters:
            rep.report(sf, extract_line, "unit-escape",
                       ".value()/.count() raw extraction re-enters a "
                       "unit-typed expression on the same statement; stay "
                       "inside the type system (scalar *, / on the unit "
                       "type, units::per(), to_bits()) so bits and bytes "
                       "cannot be swapped in the raw gap")


# ---------------------------------------------------------------------------
# Structural pass: scopes, handle-storing classes, event-lifetime
# ---------------------------------------------------------------------------

@dataclass
class Scope:
    kind: str                 # 'ns' | 'class' | 'fn' | 'lambda' | 'block'
    name: str | None = None   # class/ns/fn name
    class_name: str | None = None  # for 'fn': owning class, if any


CONTROL_KEYWORDS = ("if", "for", "while", "switch", "catch")
FN_TAIL_SKIP = ("const", "noexcept", "override", "final", "mutable",
                "volatile", "&", "&&", "*", "::", "<", ">", ",")


def _classify_brace(toks: list[Token], i: int,
                    stack: list[Scope]) -> Scope:
    """Classify the scope opened by the `{` at index i."""
    # Immediate-previous token shortcuts: initializer lists, else/do/try.
    p = prev_tok(toks, i)
    if p is None:
        return Scope("block")
    if p.kind == "punct" and p.text in (";", "=", ",", "(", "[",
                                        "{", "}", "return"):
        return Scope("block")
    if is_id(p, "else", "do", "try"):
        return Scope("block")
    if is_p(p, "]"):  # capture-only lambda:  [...]{ }
        return Scope("lambda")

    # namespace [name] {
    if is_id(p, "namespace"):
        return Scope("ns")
    if p.kind == "id" and i >= 2 and is_id(toks[i - 2], "namespace"):
        return Scope("ns", name=p.text)

    # class/struct ... {  — scan back for the keyword within the head.
    k = i - 1
    seen_paren = False
    while k >= 0 and not is_p(toks[k], ";", "{", "}"):
        if is_p(toks[k], ")"):
            seen_paren = True
        if is_id(toks[k], "class", "struct", "union") and not seen_paren:
            # name = first id after the keyword
            if k + 1 < len(toks) and toks[k + 1].kind == "id":
                return Scope("class", name=toks[k + 1].text)
            return Scope("class")
        if is_id(toks[k], "enum"):
            return Scope("block")
        k -= 1

    # Function / lambda / control statement: walk back over the tail
    # (const, noexcept, trailing return) to the parameter-list `)`.
    k = i - 1
    while k >= 0 and ((toks[k].kind == "id"
                       and toks[k].text in FN_TAIL_SKIP)
                      or is_p(toks[k], *FN_TAIL_SKIP)
                      or is_p(toks[k], "->")):
        k -= 1
    if k < 0 or not is_p(toks[k], ")"):
        return Scope("block")

    # Find the matching `(`, unwinding constructor-initializer lists:
    # `Foo::Foo(...) : a_(x), b_{y} {` — keep walking left while the token
    # before the candidate `(`'s head is `,` or `:`.
    while True:
        depth = 0
        j = k
        while j >= 0:
            if is_p(toks[j], ")", "}"):
                depth += 1
            elif is_p(toks[j], "(", "{"):
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j < 0:
            return Scope("block")
        head = j - 1  # token before the `(`
        if head >= 0 and is_p(toks[head], "]"):
            return Scope("lambda")
        if head >= 0 and toks[head].kind == "id":
            name_tok = toks[head]
            if name_tok.text in CONTROL_KEYWORDS:
                return Scope("block")
            before = head - 1
            if before >= 0 and is_p(toks[before], ",", ":") \
                    and not is_p(toks[before], "::"):
                # ctor-initializer item: continue unwinding to its left.
                k = before
                while k >= 0 and not is_p(toks[k], ")", "}"):
                    k -= 1
                if k < 0:
                    return Scope("block")
                continue
            cls = None
            if before >= 0 and is_p(toks[before], "::") \
                    and before - 1 >= 0 and toks[before - 1].kind == "id":
                cls = toks[before - 1].text
            else:
                for s in reversed(stack):
                    if s.kind == "class":
                        cls = s.name
                        break
                    if s.kind in ("fn", "lambda"):
                        break
            return Scope("fn", name=name_tok.text, class_name=cls)
        return Scope("block")


def scan_scopes(sf: SourceFile):
    """Yield (index, token, stack) for every token, maintaining the scope
    stack; also collects class names that declare EventHandle members into
    sf_handle_classes (returned)."""
    toks = sf.tokens
    stack: list[Scope] = []
    handle_classes: set[str] = set()
    sites = []  # (index, stack snapshot) for schedule_* call tokens
    for i, t in enumerate(toks):
        if is_p(t, "{"):
            stack.append(_classify_brace(toks, i, stack))
            continue
        if is_p(t, "}"):
            if stack:
                stack.pop()
            continue
        # EventHandle member declaration at class-body level.
        if (t.kind == "id" and t.text == "EventHandle" and stack
                and stack[-1].kind == "class" and stack[-1].name):
            k = i + 1
            if k < len(toks) and toks[k].kind == "id" \
                    and k + 1 < len(toks) \
                    and is_p(toks[k + 1], ";", "=", "{"):
                handle_classes.add(stack[-1].name)
        if (t.kind == "id" and t.text in ("schedule_after", "schedule_at")
                and i + 1 < len(toks) and is_p(toks[i + 1], "(")):
            sites.append((i, list(stack)))
    return sites, handle_classes


def enclosing_fn(stack: list[Scope]) -> Scope | None:
    """Nearest function scope, looking out through lambdas and blocks."""
    for s in reversed(stack):
        if s.kind == "fn":
            return s
    return None


def check_event_lifetime(files: list[SourceFile], rep: Reporter) -> None:
    """Whole-project pass: classes storing EventHandle members are collected
    tree-wide, then schedule calls are checked in src/ files."""
    all_sites: list[tuple[SourceFile, list]] = []
    handle_classes: set[str] = set()
    for sf in files:
        sites, classes = scan_scopes(sf)
        handle_classes |= classes
        if in_module(sf.relpath, "src/"):
            all_sites.append((sf, sites))

    for sf, sites in all_sites:
        toks = sf.tokens
        for i, stack in sites:
            t = toks[i]
            fn = enclosing_fn(stack)
            close = matching_close(toks, i + 1, "(", ")")
            if close is None:
                continue

            # Pattern 1: discarded handle in a member function of a class
            # that elsewhere stores handles.
            if fn is not None and fn.class_name in handle_classes:
                # The call must be the head of its statement: scan back and
                # require no assignment/return/consumption before it.
                s = statement_start(toks, i)
                consumed = False
                depth = 0
                for k in range(s, i):
                    tk = toks[k]
                    if is_p(tk, "=", "return") or is_id(tk, "return") \
                            or tk.kind == "punct" and tk.text.endswith("=") \
                            and tk.text not in ("==", "!=", "<=", ">="):
                        consumed = True
                        break
                    if is_p(tk, "(", "["):
                        depth += 1
                    elif is_p(tk, ")", "]"):
                        depth -= 1
                if depth > 0:  # inside an argument list: result is consumed
                    consumed = True
                if not consumed:
                    rep.report(
                        sf, t.line, "event-lifetime",
                        f"returned EventHandle discarded inside "
                        f"'{fn.class_name}', which stores handles elsewhere; "
                        "an unsaved handle cannot be cancelled on teardown — "
                        "store it in a member (or annotate why this event "
                        "provably outlives the object)")

            # Pattern 2: [&]-capture lambda scheduled from non-member scope.
            if fn is not None and fn.class_name is None:
                for k in range(i + 2, close - 1):
                    if (is_p(toks[k], "[") and is_p(toks[k + 1], "&")
                            and k + 2 <= close and is_p(toks[k + 2], "]")):
                        rep.report(
                            sf, t.line, "event-lifetime",
                            "[&]-capture lambda passed to a delayed schedule "
                            "from non-member scope; the locals it captures "
                            "by reference are dead when the event fires "
                            "unless this scope provably outlives the "
                            "scheduler run — capture by value (or annotate "
                            "why the frame outlives the event)")
                        break


# ---------------------------------------------------------------------------
# Whole-project pass: module layering
# ---------------------------------------------------------------------------

def load_layers(path: str) -> dict[str, list[str]]:
    import tomllib
    with open(path, "rb") as f:
        data = tomllib.load(f)
    modules = data.get("modules")
    if not isinstance(modules, dict):
        raise ValueError(f"{path}: missing [modules] table")
    for mod, deps in modules.items():
        if not isinstance(deps, list):
            raise ValueError(f"{path}: modules.{mod} must be a list")
        for d in deps:
            if d not in modules:
                raise ValueError(
                    f"{path}: modules.{mod} depends on undeclared '{d}'")
    # The declared DAG itself must be acyclic.
    state: dict[str, int] = {}

    def dfs(m: str, chain: list[str]) -> None:
        state[m] = 1
        for d in modules[m]:
            if state.get(d) == 1:
                cyc = chain[chain.index(d):] + [d] if d in chain else [m, d]
                raise ValueError(
                    f"{path}: declared layer graph has a cycle: "
                    + " -> ".join(cyc))
            if state.get(d, 0) == 0:
                dfs(d, chain + [d])
        state[m] = 2

    for m in modules:
        if state.get(m, 0) == 0:
            dfs(m, [m])
    return {m: list(deps) for m, deps in modules.items()}


def file_module(relpath: str) -> str | None:
    norm = relpath.replace(os.sep, "/")
    if not norm.startswith("src/"):
        return None
    parts = norm.split("/")
    return parts[1] if len(parts) >= 3 else None


def check_layering(files: list[SourceFile],
                   layers: dict[str, list[str]],
                   rep: Reporter) -> None:
    # module -> dep module -> first witness (SourceFile, line, include text)
    edges: dict[str, dict[str, tuple[SourceFile, int, str]]] = {}
    for sf in files:
        mod = file_module(sf.relpath)
        if mod is None:
            continue
        if mod not in layers:
            rep.report(sf, 1, "layer-violation",
                       f"module 'src/{mod}/' is not declared in layers.toml; "
                       "add it to the [modules] table with its allowed "
                       "dependencies")
            continue
        for line, inc in sf.includes:
            dep = inc.split("/", 1)[0] if "/" in inc else None
            if dep is None or dep == mod or dep not in layers:
                continue
            edges.setdefault(mod, {}).setdefault(dep, (sf, line, inc))
            if dep not in layers[mod]:
                rep.report(sf, line, "layer-violation",
                           f"include edge '{mod} -> {dep}' is not allowed by "
                           f"layers.toml ('{inc}'); either the include is a "
                           "layering bug to refactor away, or the module DAG "
                           "must be deliberately widened in-diff")

    # Cycle detection over the observed module graph, with include-chain
    # witnesses.  DFS in sorted order keeps reports deterministic.
    state: dict[str, int] = {}
    reported: set[frozenset] = set()

    def dfs(m: str, chain: list[str]) -> None:
        state[m] = 1
        for dep in sorted(edges.get(m, ())):
            if state.get(dep) == 1 and dep in chain:
                cyc = chain[chain.index(dep):] + [dep]
                key = frozenset(cyc)
                if key not in reported:
                    reported.add(key)
                    hops = []
                    for a, b in zip(cyc, cyc[1:]):
                        w = edges[a][b]
                        hops.append(f"{a} -> {b} "
                                    f"({w[0].relpath}:{w[1]} includes "
                                    f"\"{w[2]}\")")
                    wit = edges[cyc[0]][cyc[1]]
                    rep.report(wit[0], wit[1], "layer-cycle",
                               "module include cycle: " + "; ".join(hops))
            elif state.get(dep, 0) == 0:
                dfs(dep, chain + [dep])
        state[m] = 2

    for m in sorted(edges):
        if state.get(m, 0) == 0:
            dfs(m, [m])


# ---------------------------------------------------------------------------
# Whole-project pass: obs name registry
# ---------------------------------------------------------------------------

OBS_REGISTER = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "probe_counter": "counter",
    "probe_gauge": "gauge",
}


@dataclass
class ObsSite:
    name: str
    kind: str
    relpath: str
    line: int
    prefixed: bool  # name built as `prefix + "leaf"`


def collect_obs_sites(files: list[SourceFile]) -> list[ObsSite]:
    sites: list[ObsSite] = []
    for sf in files:
        if not in_module(sf.relpath, "src/"):
            continue
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in OBS_REGISTER:
                continue
            if not is_member_access(toks, i):
                continue  # declarations/definitions, not registry calls
            if i + 1 >= len(toks) or not is_p(toks[i + 1], "("):
                continue
            # First argument: tokens up to the first `,` at depth 1.
            k, depth = i + 1, 0
            strs: list[Token] = []
            others = 0
            while k < len(toks):
                tk = toks[k]
                if is_p(tk, "(", "[", "{"):
                    depth += 1
                elif is_p(tk, ")", "]", "}"):
                    depth -= 1
                    if depth == 0:
                        break
                elif is_p(tk, ",") and depth == 1:
                    break
                elif depth >= 1:
                    if tk.kind == "str":
                        strs.append(tk)
                    elif not is_p(tk, "+"):
                        others += 1
                k += 1
            if not strs:
                continue  # fully dynamic name: nothing statically checkable
            leaf = strs[-1]
            sites.append(ObsSite(leaf.text, OBS_REGISTER[t.text],
                                 sf.relpath, leaf.line,
                                 prefixed=others > 0 or len(strs) > 1))
    sites.sort(key=lambda s: (s.name, s.kind, s.relpath, s.line))
    return sites


def check_obs_registry(files: list[SourceFile], rep: Reporter,
                       sites: list[ObsSite]) -> None:
    by_file = {sf.relpath: sf for sf in files}
    by_name: dict[str, list[ObsSite]] = {}
    for s in sites:
        by_name.setdefault(s.name, []).append(s)

    for name, group in sorted(by_name.items()):
        kinds = sorted({s.kind for s in group})
        if len(kinds) > 1:
            where = ", ".join(f"{s.relpath}:{s.line} ({s.kind})"
                              for s in group)
            for s in group:
                rep.report(by_file[s.relpath], s.line, "obs-name-registry",
                           f"metric name '{name}' registered with "
                           f"conflicting kinds [{', '.join(kinds)}] — "
                           f"sites: {where}; one semantic name must map to "
                           "one instrument kind")

    by_lower: dict[str, set[str]] = {}
    for name in by_name:
        by_lower.setdefault(name.lower(), set()).add(name)
    for lower, variants in sorted(by_lower.items()):
        if len(variants) > 1:
            for name in sorted(variants):
                for s in by_name[name]:
                    rep.report(by_file[s.relpath], s.line,
                               "obs-name-registry",
                               f"metric name '{name}' differs only by case "
                               f"from {sorted(variants - {name})}; exporters "
                               "sort lexicographically, so case twins "
                               "reorder silently — pick one spelling")


def obs_catalog(sites: list[ObsSite]) -> dict:
    metrics: dict[tuple[str, str], dict] = {}
    for s in sites:
        ent = metrics.setdefault((s.name, s.kind), {
            "name": s.name, "kind": s.kind, "prefixed": s.prefixed,
            "sites": []})
        ent["sites"].append(f"{s.relpath}:{s.line}")
        ent["prefixed"] = ent["prefixed"] or s.prefixed
    return {
        "_comment": ("Generated by gtw-lint --emit-obs-catalog: every "
                     "statically-registered obs metric name in src/.  The "
                     "gtw_lint_obs_catalog ctest diffs this against a fresh "
                     "scan, so new/renamed metrics must update this file "
                     "in the same commit."),
        "metrics": [metrics[k] for k in sorted(metrics)],
    }


# ---------------------------------------------------------------------------
# Whole-project pass: GTW-San attach-catalog coverage
# ---------------------------------------------------------------------------
#
# src/obs/ names the components worth observing (instrument_*/bridge_*/
# attach_* parameter types); src/check/ names the components GTW-San can
# check (attach_* parameter types).  The first set minus the second is the
# sanitizer's blind spot, reported per missing component at the obs
# declaration that proves the component matters.

# Simulator modules whose qualified types count as components when they
# appear in a catalog function's parameter list.  Deliberately excludes
# units (value types), std, and the catalogs' own modules (obs, check).
COMPONENT_MODULES = ("des", "net", "exec", "trace", "flow", "meta",
                     "testbed", "linalg", "fire", "scanner", "viz", "apps")
# Qualified value types that ride along in catalog signatures without
# being components themselves.
COMPONENT_IGNORE = {("des", "SimTime"), ("des", "EventHandle")}


def collect_component_params(
        files: list[SourceFile], subdir: str,
        prefixes: tuple[str, ...]) -> dict[tuple[str, str],
                                           tuple[SourceFile, int]]:
    """Qualified component types named in the parameter lists (or argument
    lists) of catalog functions under `subdir`, with a first witness."""
    refs: dict[tuple[str, str], tuple[SourceFile, int]] = {}
    for sf in files:
        if not in_module(sf.relpath, subdir):
            continue
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or not t.text.startswith(prefixes):
                continue
            if i + 1 >= len(toks) or not is_p(toks[i + 1], "("):
                continue
            close = matching_close(toks, i + 1, "(", ")")
            if close is None:
                continue
            for k in range(i + 2, close - 1):
                a = toks[k]
                if (a.kind == "id" and a.text in COMPONENT_MODULES
                        and is_p(toks[k + 1], "::")
                        and toks[k + 2].kind == "id"):
                    pair = (a.text, toks[k + 2].text)
                    if pair not in COMPONENT_IGNORE:
                        refs.setdefault(pair, (sf, a.line))
    return refs


def check_check_coverage(files: list[SourceFile], rep: Reporter) -> None:
    # Partial-tree scans (single files, src/net only, ...) must stay
    # silent: the diff is only meaningful when the check catalog was part
    # of the scan at all.
    if not any(in_module(sf.relpath, "src/check/") for sf in files):
        return
    observed = collect_component_params(
        files, "src/obs/", ("instrument_", "bridge_", "attach_"))
    checked = collect_component_params(files, "src/check/", ("attach_",))
    for pair, (sf, line) in sorted(observed.items(),
                                   key=lambda kv: kv[0]):
        if pair not in checked:
            rep.report(sf, line, "check-coverage",
                       f"component type '{pair[0]}::{pair[1]}' is "
                       "instrumented in src/obs/ but has no attach_* entry "
                       "in the src/check/ GTW-San catalog — every "
                       "observable component must also be checkable; add "
                       "an attach_* taking it (src/check/attach.hpp) or "
                       "justify the blind spot in-diff")


# ---------------------------------------------------------------------------
# Output & driver
# ---------------------------------------------------------------------------

PER_FILE_RULES = [
    "unordered-container", "unordered-iter", "raw-entropy", "wall-clock",
    "pointer-order", "past-schedule", "raw-rate-double",
    "unitless-size-param", "raw-metric-print", "pool-bypass-new",
    "meta-raw-tcp", "unit-escape", "check-side-effect", "span-unclosed",
]
PROJECT_RULES = [
    "layer-violation", "layer-cycle", "obs-name-registry", "event-lifetime",
    "check-coverage",
]
RULES = PER_FILE_RULES + PROJECT_RULES

RULE_HELP = {
    "unordered-container": "unordered container in simulator code",
    "unordered-iter": "iteration over an unordered container",
    "raw-entropy": "entropy source outside des::Rng",
    "wall-clock": "wall-clock time in simulator code",
    "pointer-order": "ordering/hashing on raw pointer values",
    "past-schedule": "event scheduled before the current DES clock",
    "raw-rate-double": "raw floating-point rate outside src/units/",
    "unitless-size-param": "raw byte-count parameter on a net API",
    "raw-metric-print": "direct stdout printing in library code",
    "pool-bypass-new": "heap allocation of a pooled event/packet record",
    "meta-raw-tcp": "raw TcpConnection in src/meta/",
    "unit-escape": ".value()/.count() re-entering unit-typed expressions",
    "check-side-effect": "mutating expression inside GTW_CHECK_HOOK",
    "span-unclosed": "discarded begin_span()/mint() result",
    "layer-violation": "include edge not allowed by the module DAG",
    "layer-cycle": "cycle in the module include graph",
    "obs-name-registry": "metric name kind/case collision",
    "event-lifetime": "discarded EventHandle or dangling [&] capture",
    "check-coverage": "component observable via obs but absent from "
                      "src/check/",
}


def write_sarif(path: str, findings: list[Finding]) -> None:
    sarif = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "gtw-lint",
                "informationUri": "tools/lint/gtw_lint.py",
                "rules": [{"id": r,
                           "shortDescription": {"text": RULE_HELP[r]}}
                          for r in RULES],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace(os.sep, "/")},
                        "region": {"startLine": f.line},
                    }}],
            } for f in findings],
        }],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(sarif, f, indent=2, sort_keys=True)
        f.write("\n")


def iter_sources(root: str, paths: list[str]) -> list[tuple[str, str]]:
    found: list[tuple[str, str]] = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            found.append((full, os.path.relpath(full, root)))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTENSIONS):
                    fp = os.path.join(dirpath, fn)
                    found.append((fp, os.path.relpath(fp, root)))
    return found


def main(argv: list[str]) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    ap = argparse.ArgumentParser(
        prog="gtw-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to scan (default: src)")
    ap.add_argument("--root", default=".",
                    help="repo root; findings are reported relative to it")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--layers", default=None,
                    help="module DAG declaration (default: layers.toml "
                         "next to this script)")
    ap.add_argument("--json", metavar="FILE", default=None,
                    help="also write findings as SARIF 2.1.0 to FILE")
    ap.add_argument("--summary", action="store_true",
                    help="print a one-line per-rule hit count")
    ap.add_argument("--fix-allowlist", action="store_true",
                    help="print ready-to-paste allow() annotation lines "
                         "for the findings instead of the findings")
    ap.add_argument("--emit-obs-catalog", metavar="FILE", default=None,
                    help="write the collected obs metric catalog as JSON")
    ap.add_argument("--check-obs-catalog", metavar="FILE", default=None,
                    help="fail unless FILE matches a fresh catalog scan")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    active = set(RULES)
    if args.rules:
        active = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = active - set(RULES)
        if unknown:
            print(f"gtw-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    root = os.path.abspath(args.root)
    paths = args.paths or ["src"]
    sources = iter_sources(root, paths)
    if not sources:
        print("gtw-lint: no source files found", file=sys.stderr)
        return 2

    files: list[SourceFile] = []
    for full, rel in sources:
        try:
            files.append(load_source(full, rel))
        except OSError as e:
            print(f"gtw-lint: cannot read {full}: {e}", file=sys.stderr)
            return 2

    rep = Reporter()
    for sf in files:
        check_per_file(sf, rep)

    # Whole-project pass (after per-file scanning).
    if {"layer-violation", "layer-cycle"} & active:
        layers_path = args.layers or os.path.join(here, "layers.toml")
        try:
            layers = load_layers(layers_path)
        except (OSError, ValueError) as e:
            print(f"gtw-lint: {e}", file=sys.stderr)
            return 2
        check_layering(files, layers, rep)

    obs_sites = collect_obs_sites(files)
    if "obs-name-registry" in active:
        check_obs_registry(files, rep, obs_sites)
    if "event-lifetime" in active:
        check_event_lifetime(files, rep)
    if "check-coverage" in active:
        check_check_coverage(files, rep)

    findings = sorted((f for f in rep.findings if f.rule in active),
                      key=lambda f: (f.path, f.line, f.rule))

    catalog_drift = False
    if args.emit_obs_catalog:
        with open(args.emit_obs_catalog, "w", encoding="utf-8") as f:
            json.dump(obs_catalog(obs_sites), f, indent=2, sort_keys=True)
            f.write("\n")
    if args.check_obs_catalog:
        fresh = obs_catalog(obs_sites)
        try:
            with open(args.check_obs_catalog, encoding="utf-8") as f:
                committed = json.load(f)
        except (OSError, ValueError) as e:
            print(f"gtw-lint: cannot read committed obs catalog: {e}",
                  file=sys.stderr)
            return 2
        if committed != fresh:
            catalog_drift = True
            old = {(m["name"], m["kind"])
                   for m in committed.get("metrics", [])}
            new = {(m["name"], m["kind"]) for m in fresh["metrics"]}
            for name, kind in sorted(new - old):
                print(f"gtw-lint: obs catalog: NEW metric '{name}' ({kind}) "
                      "not in committed catalog", file=sys.stderr)
            for name, kind in sorted(old - new):
                print(f"gtw-lint: obs catalog: metric '{name}' ({kind}) "
                      "vanished from the tree", file=sys.stderr)
            if old == new:
                print("gtw-lint: obs catalog: site/prefix details drifted",
                      file=sys.stderr)
            print(f"gtw-lint: regenerate with: gtw_lint.py "
                  f"--emit-obs-catalog {args.check_obs_catalog} src",
                  file=sys.stderr)

    if args.fix_allowlist:
        if not findings:
            print("gtw-lint: nothing to allow — tree is clean",
                  file=sys.stderr)
        for f in findings:
            summary = f.message.split(";")[0].split("—")[0].strip()
            print(f"{f.path}:{f.line}:")
            print(f"  // gtw-lint: allow({f.rule}) — TODO(justify): "
                  f"{summary}")
    else:
        for f in findings:
            print(f.render())

    if args.json:
        write_sarif(args.json, findings)

    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    if args.summary:
        if counts:
            hits = " ".join(f"{r}={counts[r]}" for r in RULES if r in counts)
        else:
            hits = "none"
        print(f"gtw-lint: rule hits: {hits}")
    n = len(findings)
    print(f"gtw-lint: {len(sources)} file(s) scanned, {n} finding(s)",
          file=sys.stderr)
    return 1 if findings or catalog_drift else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
