#!/usr/bin/env python3
"""gtw-lint: determinism & simulation-correctness checker for the testbed.

Every reproduced number in this repo rests on the claim that the DES is a
pure function of its inputs and seeds.  gtw-lint encodes that claim as
machine-checked source rules:

  unordered-container   std::unordered_{map,set,multimap,multiset} declared
                        in simulator code.  Their iteration order is
                        unspecified and varies across libstdc++ versions and
                        hash seeds; an innocent range-for later turns into a
                        run-to-run divergence.  Use std::map/std::set, or a
                        vector sorted on a stable key.
  unordered-iter        Iteration (range-for, or .begin()/iterator walk)
                        over a name declared as an unordered container in
                        the same file.  The concrete hazard the rule above
                        prevents in the large.
  raw-entropy           rand()/srand()/random()/drand48()/lrand48()/
                        std::random_device/std::mt19937 outside des/random.
                        All randomness must flow through des::Rng, which is
                        seeded, forkable, and identical across platforms.
  wall-clock            std::chrono::{system,steady,high_resolution}_clock,
                        time(...), clock(), gettimeofday, clock_gettime
                        outside des/time.  Simulated time comes from
                        des::Scheduler::now(); wall time in a sim path makes
                        results depend on the machine running them.
  pointer-order         Ordering or hashing on raw pointer values
                        (std::map/std::set keyed on T*, std::hash<T*>,
                        sorting by address).  Addresses vary run to run
                        (allocator, ASLR); anything ordered by them feeds
                        nondeterminism into event order.  Key on stable ids.
  past-schedule         Textually negative schedule targets:
                        schedule_after(-x) or schedule_at(now() - x).
                        Scheduling before the current DES clock corrupts the
                        event order invariant (the runtime assert is the
                        backstop; this catches it at review time).
  raw-rate-double       A `double`/`float` variable suffixed _bps/_Bps, or a
                        bare e6/e9 scientific literal forming a rate on a
                        line that talks about rates/bandwidth, outside
                        src/units/.  Raw rate doubles are how the bits-vs-
                        bytes confusion this repo's unit types eliminate
                        creeps back in; construct a units::BitRate /
                        units::ByteRate instead (BitRate::mbps(622.08), not
                        622.08e6).
  unitless-size-param   A function parameter spelled `uint32_t/uint64_t
                        ...bytes...` in src/net/.  Sizes crossing the net
                        API boundary must be units::Bytes so byte counts
                        cannot be mistaken for bit counts (or cells) at a
                        call site; raw integers stay legal inside packet
                        structs and private arithmetic.
  raw-metric-print      std::cout / printf / fprintf(stdout) / puts in
                        src/.  Library code must not dump metrics to stdout
                        directly: numbers leave the simulator through the
                        stable-ordered obs exporters (write_metrics_json/
                        csv, write_chrome_trace) or as returned strings the
                        caller prints.  Benches, examples, tests and tools
                        print freely; snprintf (string building) and
                        std::cerr (diagnostics) stay legal everywhere.
  pool-bypass-new       `new`/make_unique/make_shared of an event or packet
                        record (Entry, Frame, IpPacket) in src/.  These are
                        the per-event hot-path types: they live in
                        des::SlabPool arenas (DESIGN.md §10) so the
                        schedule/fire and burst cycles are allocation-free
                        and slot indices are stable run-to-run.  A stray
                        heap allocation reintroduces per-event malloc cost
                        and address-dependent state.  Benches may build
                        baseline replicas freely; src/ must go through the
                        pools.
  meta-raw-tcp          `TcpConnection` named in src/meta/ outside
                        path_transport.  The meta layer reaches the WAN
                        through meta::PathTransport only (striping, pacing,
                        stall recovery, adaptive tuning live there); a raw
                        connection constructed elsewhere silently bypasses
                        all of that and fragments the per-path accounting.
                        A pass-through PathConfig gives byte-identical
                        single-stream behaviour, so there is no reason to
                        hold a bare connection.

Suppression: append `// gtw-lint: allow(<rule>[, <rule>...])` to the
offending line, or place it alone on the line above.  Allowlist annotations
are grep-able, so every exception is visible in-diff.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
No dependencies beyond the Python standard library.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

SOURCE_EXTENSIONS = (".cpp", ".hpp", ".cc", ".hh", ".h")

ALLOW_RE = re.compile(r"//\s*gtw-lint:\s*allow\(([^)]*)\)")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
# `std::unordered_map<K, V> name_;` / `> name;` — captures the declared name
# on single-line member/local declarations so unordered-iter can track it.
UNORDERED_NAME_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*"
    r"(\w+)\s*[;={]")

RAW_ENTROPY_RE = re.compile(
    r"\bstd\s*::\s*random_device\b|\bstd\s*::\s*mt19937(?:_64)?\b"
    r"|(?<![\w:])(?:rand|srand|random|srandom|drand48|lrand48|rand_r)\s*\(")

WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|(?<![\w:])(?:gettimeofday|clock_gettime)\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&)"
    r"|(?<![\w:.])clock\s*\(\s*\)")

POINTER_ORDER_RE = re.compile(
    r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*<\s*[\w:]+(?:\s*<[^<>]*>)?"
    r"\s*\*"
    r"|\bstd\s*::\s*hash\s*<\s*[\w:]+(?:\s*<[^<>]*>)?\s*\*\s*>"
    r"|\bstd\s*::\s*less\s*<\s*[\w:]+(?:\s*<[^<>]*>)?\s*\*\s*>")

PAST_SCHEDULE_RE = re.compile(
    r"\bschedule_after\s*\(\s*-"
    r"|\bschedule_at\s*\(\s*(?:[\w.\->]*\s*)?now\s*\(\s*\)\s*-")

# raw-rate-double: a floating declaration whose name admits it holds a rate.
RAW_RATE_DECL_RE = re.compile(r"\b(?:double|float)\s+\w*_(?:bps|Bps)\b")
# ...or a rate formed from a bare scientific literal: `* 1e6` / `* 1e9`
# scaling, or a full literal like 622.08e6 / 8e9.  Plain 1e6/1e9 alone is
# not matched so `x / 1e6` pretty-printing stays legal.
RAW_RATE_LIT_RE = re.compile(
    r"\*\s*1e[69]\b"
    r"|(?<![\w.])(?!1e[69]\b)\d+(?:\.\d+)?e[69]\b")
RATE_CONTEXT_RE = re.compile(
    r"rate|bandwidth|bps|goodput|throughput|line", re.IGNORECASE)
# A line already speaking the typed vocabulary is constructing, not
# evading — and reading a typed rate out through .bps()/.mbps()/.gbps()
# (to compare against an expected figure, or to print) is the sanctioned
# exit from the type system.
TYPED_RATE_RE = re.compile(
    r"\b(?:BitRate|ByteRate|OpRate)\b|\bunits\s*::"
    r"|\.\s*(?:k|m|g)?bps\s*\(")

UNITLESS_SIZE_PARAM_RE = re.compile(
    r"[(,]\s*(?:std\s*::\s*)?uint(?:32|64)_t\s+\w*bytes\w*")

RAW_METRIC_PRINT_RE = re.compile(
    r"\bstd\s*::\s*cout\b"
    r"|(?<![\w:])printf\s*\("
    r"|(?<![\w:])fprintf\s*\(\s*stdout\b"
    r"|(?<![\w:])puts\s*\(")

# pool-bypass-new: heap allocation of pooled event/packet record types.
POOL_BYPASS_RE = re.compile(
    r"\bnew\s+(?:[\w:]+\s*::\s*)?(?:Entry|Frame|IpPacket)\b"
    r"|\bmake_(?:unique|shared)\s*<\s*(?:[\w:]+\s*::\s*)?"
    r"(?:Entry|Frame|IpPacket)\s*[>\[]")

# meta-raw-tcp: any mention of the raw connection type (member, local,
# make_unique, include-for-use) inside src/meta/ outside path_transport.
META_RAW_TCP_RE = re.compile(r"\bTcpConnection\b")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings_and_comments(lines: list[str]) -> list[str]:
    """Blank out string/char literals and comments, preserving line count.

    A lexer-lite: good enough for rule matching (rules never need to see
    inside literals), and it keeps false positives out of commented-out code
    and log messages.  Raw strings are handled for the common R"(...)" form.
    """
    out = []
    in_block_comment = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            if in_block_comment:
                end = line.find("*/", i)
                if end == -1:
                    i = n
                else:
                    in_block_comment = False
                    i = end + 2
                continue
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                in_block_comment = True
                i += 2
                continue
            if c == 'R' and line.startswith('R"(', i):
                end = line.find(')"', i + 3)
                i = n if end == -1 else end + 2
                continue
            if c in "\"'":
                quote = c
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                continue
            result.append(c)
            i += 1
        out.append("".join(result))
    return out


def collect_allows(lines: list[str]) -> dict[int, set[str]]:
    """Map line number (1-based) -> set of rules allowed on that line.

    An annotation alone on a line also covers the line directly below it,
    so it can sit above the construct it excuses.
    """
    allows: dict[int, set[str]] = {}
    for idx, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        allows.setdefault(idx, set()).update(rules)
        if ALLOW_RE.sub("", line).strip() == "":
            # Standalone annotation: covers the following line.
            allows.setdefault(idx + 1, set()).update(rules)
    return allows


def in_module(relpath: str, *parts: str) -> bool:
    norm = relpath.replace(os.sep, "/")
    return any(p in norm for p in parts)


def check_file(path: str, relpath: str) -> list[Finding]:
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read().splitlines()
    except OSError as e:
        print(f"gtw-lint: cannot read {path}: {e}", file=sys.stderr)
        raise
    allows = collect_allows(raw)
    code = strip_strings_and_comments(raw)
    findings: list[Finding] = []

    def report(lineno: int, rule: str, message: str) -> None:
        if rule in allows.get(lineno, ()):  # suppressed in-diff
            return
        findings.append(Finding(relpath, lineno, rule, message))

    # des/random owns entropy; des/time and trace (host-side profiling)
    # legitimately name clocks.
    entropy_exempt = in_module(relpath, "des/random")
    clock_exempt = in_module(relpath, "des/time", "des/random")
    # src/units/ defines the unit types themselves and so legitimately
    # multiplies by 1e6/1e9 inside the factories.
    rate_exempt = in_module(relpath, "src/units", "units/units")
    # unitless-size-param guards the net API boundary only.
    net_boundary = in_module(relpath, "net/")
    # raw-metric-print guards library code; benches/examples/tests/tools
    # are the layers that legitimately print.
    library_code = in_module(relpath, "src/")
    # meta-raw-tcp: src/meta/ reaches the WAN through PathTransport only;
    # path_transport itself is the one legitimate holder of raw connections.
    meta_wan_guard = (in_module(relpath, "src/meta/")
                      and not in_module(relpath, "path_transport"))

    unordered_names: set[str] = set()
    for lineno, line in enumerate(code, start=1):
        m = UNORDERED_NAME_RE.search(line)
        if m:
            unordered_names.add(m.group(1))

    iter_res = []
    for name in unordered_names:
        iter_res.append((re.compile(
            r"for\s*\([^;)]*:\s*" + re.escape(name) + r"\s*\)"
            r"|\b" + re.escape(name) + r"\s*\.\s*(?:begin|cbegin|rbegin)\s*\("),
            name))

    for lineno, line in enumerate(code, start=1):
        if UNORDERED_DECL_RE.search(line):
            report(lineno, "unordered-container",
                   "unordered container in simulator code: iteration order "
                   "is unspecified and varies run-to-run; use std::map/"
                   "std::set or a sorted vector (or annotate why ordering "
                   "can never escape)")
        for rx, name in iter_res:
            if rx.search(line):
                report(lineno, "unordered-iter",
                       f"iteration over unordered container '{name}': "
                       "visit order is unspecified and will diverge between "
                       "runs; sort on a stable key first")
        if not entropy_exempt and RAW_ENTROPY_RE.search(line):
            report(lineno, "raw-entropy",
                   "raw entropy source outside des::random; all simulator "
                   "randomness must flow through the seeded des::Rng")
        if not clock_exempt and WALL_CLOCK_RE.search(line):
            report(lineno, "wall-clock",
                   "wall-clock time in simulator code; simulated time comes "
                   "from des::Scheduler::now()")
        if POINTER_ORDER_RE.search(line):
            report(lineno, "pointer-order",
                   "ordering/hashing on raw pointer values: addresses vary "
                   "run-to-run (allocator, ASLR) and must not feed event "
                   "order; key on a stable id instead")
        if PAST_SCHEDULE_RE.search(line):
            report(lineno, "past-schedule",
                   "event scheduled before the current DES clock; targets "
                   "must be >= now()")
        if not rate_exempt:
            if RAW_RATE_DECL_RE.search(line):
                report(lineno, "raw-rate-double",
                       "raw floating-point rate variable; use units::BitRate"
                       " / units::ByteRate so bits and bytes cannot be "
                       "confused at a call site")
            elif (RAW_RATE_LIT_RE.search(line)
                  and RATE_CONTEXT_RE.search(line)
                  and not TYPED_RATE_RE.search(line)):
                report(lineno, "raw-rate-double",
                       "bare e6/e9 literal forming a rate; construct it "
                       "through units::BitRate::mbps()/gbps() (or the named "
                       "net::kOc*Line constants) instead")
        if net_boundary and UNITLESS_SIZE_PARAM_RE.search(line):
            report(lineno, "unitless-size-param",
                   "unitless byte-count parameter on a net API; take "
                   "units::Bytes so the caller cannot pass bits or cells")
        if library_code and RAW_METRIC_PRINT_RE.search(line):
            report(lineno, "raw-metric-print",
                   "direct stdout printing in library code; metrics leave "
                   "the simulator through the obs exporters "
                   "(write_metrics_json/csv, write_chrome_trace) or as a "
                   "returned string the caller prints")
        if library_code and POOL_BYPASS_RE.search(line):
            report(lineno, "pool-bypass-new",
                   "heap allocation of a pooled event/packet record; the "
                   "per-event hot path is allocation-free — acquire slots "
                   "from the owning des::SlabPool instead")
        if meta_wan_guard and META_RAW_TCP_RE.search(line):
            report(lineno, "meta-raw-tcp",
                   "raw TcpConnection in src/meta/ outside PathTransport; "
                   "the meta layer's WAN traffic goes through "
                   "meta::PathTransport (a pass-through PathConfig keeps "
                   "single-stream behaviour byte-identical)")
    return findings


RULES = [
    "unordered-container", "unordered-iter", "raw-entropy", "wall-clock",
    "pointer-order", "past-schedule", "raw-rate-double",
    "unitless-size-param", "raw-metric-print", "pool-bypass-new",
    "meta-raw-tcp",
]


def iter_sources(root: str, paths: list[str]) -> list[tuple[str, str]]:
    found: list[tuple[str, str]] = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            found.append((full, os.path.relpath(full, root)))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTENSIONS):
                    fp = os.path.join(dirpath, fn)
                    found.append((fp, os.path.relpath(fp, root)))
    return found


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="gtw-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to scan (default: src)")
    ap.add_argument("--root", default=".",
                    help="repo root; findings are reported relative to it")
    ap.add_argument("--rules", default=None,
                    help="comma-separated subset of rules to run")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    active = set(RULES)
    if args.rules:
        active = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = active - set(RULES)
        if unknown:
            print(f"gtw-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    root = os.path.abspath(args.root)
    paths = args.paths or ["src"]
    sources = iter_sources(root, paths)
    if not sources:
        print("gtw-lint: no source files found", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for full, rel in sources:
        try:
            findings.extend(f for f in check_file(full, rel)
                            if f.rule in active)
        except OSError:
            return 2

    for f in findings:
        print(f.render())
    n = len(findings)
    print(f"gtw-lint: {len(sources)} file(s) scanned, {n} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
