// The coupled climate application of section 3: an ocean-ice model on the
// Cray T3E and an atmosphere model on the IBM SP2, exchanging 2-D surface
// fields through the flux coupler every timestep ("up to 1 MByte in short
// bursts") across the testbed.  Shows the language-interop helpers on the
// ocean->atmosphere field (IFS being a Fortran code).
//
//   $ ./climate_coupling
#include <cstdio>
#include <memory>

#include "apps/climate.hpp"
#include "meta/communicator.hpp"
#include "meta/interop.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace gtw;

  testbed::Testbed tb{testbed::TestbedOptions{}};
  meta::Metacomputer mc(tb.scheduler());
  meta::MachineSpec t3e;
  t3e.name = "T3E (ocean-ice, MOM-2)";
  t3e.max_pes = 512;
  t3e.frontend = &tb.t3e600();
  meta::MachineSpec sp2;
  sp2.name = "SP2 (atmosphere, IFS)";
  sp2.max_pes = 64;
  sp2.frontend = &tb.sp2();
  const int m_t3e = mc.add_machine(t3e);
  const int m_sp2 = mc.add_machine(sp2);
  net::TcpConfig tcp;
  tcp.mss = tb.options().atm_mtu - units::Bytes{40};
  mc.link_machines(m_t3e, m_sp2, tcp, 7000);

  auto comm = std::make_shared<meta::Communicator>(
      mc, std::vector<meta::ProcLoc>{{m_t3e, 0}, {m_sp2, 0}});

  // Production-scale grids: the per-step exchange approaches the paper's
  // "up to 1 MByte in short bursts".
  apps::OceanConfig ocfg;
  ocfg.nx = 256;
  ocfg.ny = 128;
  apps::AtmosConfig acfg;
  acfg.nx = 192;
  acfg.ny = 96;
  std::printf("coupling a %dx%d ocean to a %dx%d atmosphere for 40 steps "
              "across the OC-48 WAN...\n", ocfg.nx, ocfg.ny, acfg.nx,
              acfg.ny);
  apps::ClimateCoupling run(comm, ocfg, acfg, 40);
  run.start();
  tb.scheduler().run();

  const apps::ClimateResult& res = run.result();
  std::printf("completed %d coupled steps\n", res.steps_completed);
  std::printf("per step: %.2f MByte exchanged in %.1f ms (paper: ~1 MByte "
              "in short bursts)\n",
              static_cast<double>(res.bytes_per_step) / 1e6,
              res.exchange_latency_s * 1e3);
  std::printf("climate state: mean SST %.1f K, %d ice cells\n", res.mean_sst,
              res.ice_cells);

  // Language interoperability: the C-side ocean field reordered for a
  // Fortran-declared atmosphere array and back — a lossless round trip.
  apps::Field2D sst(8, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 8; ++x) sst.at(x, y) = 280.0 + x + 10.0 * y;
  const auto fortran_order = meta::to_column_major(sst.v, 8, 4);
  const auto back = meta::from_column_major(fortran_order, 8, 4);
  std::printf("interop round trip on an 8x4 field: %s\n",
              back == sst.v ? "lossless" : "BROKEN");
  return 0;
}
