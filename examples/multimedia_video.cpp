// The multimedia project of section 3: stream studio-quality uncompressed
// D1 video (270 Mbit/s CBR) across the testbed, on all three WAN
// generations, and report delivery quality — the experiment behind the
// later distributed virtual TV-production extension (section 5).
//
//   $ ./multimedia_video
#include <cstdio>

#include "apps/video.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace gtw;

  std::printf("uncompressed D1 video: 270 Mbit/s, 25 frames/s, %.2f MB per "
              "frame\n\n", 270e6 / 8.0 / 25.0 / 1e6);
  for (auto era : {testbed::WanEra::kBWin155, testbed::WanEra::kOc12_1997,
                   testbed::WanEra::kOc48_1998}) {
    testbed::Testbed tb{testbed::TestbedOptions{era}};
    const char* name = era == testbed::WanEra::kBWin155   ? "B-WiN 155 "
                       : era == testbed::WanEra::kOc12_1997 ? "OC-12 1997"
                                                            : "OC-48 1998";
    apps::D1VideoConfig cfg;
    cfg.frames = 200;  // 8 seconds of video
    apps::D1VideoSession session(tb.onyx2_gmd(), tb.onyx2_juelich(), cfg);
    session.start();
    tb.scheduler().run();
    const auto rep = session.report();
    std::printf("%s: %6.1f Mbit/s delivered | %3llu/%llu frames lost | "
                "jitter %5.2f ms | %s\n", name, rep.goodput.mbps(),
                static_cast<unsigned long long>(rep.frames_lost),
                static_cast<unsigned long long>(rep.frames_sent),
                rep.jitter_ms, rep.feasible ? "broadcast quality" : "unusable");
  }
  std::printf("\nconclusion (as in the paper): studio video needs the "
              "gigabit testbed; the 155 Mbit/s B-WiN cannot carry a single "
              "D1 stream.\n");
  return 0;
}
