// MEG dipole localisation with MUSIC (the pmusic project of section 3),
// distributed over two machines of the metacomputer.  Demonstrates the
// latency-bound communication pattern: the scan itself is embarrassingly
// parallel, but every accepted source costs a WAN allreduce.
//
//   $ ./meg_music
#include <cmath>
#include <cstdio>
#include <memory>

#include "apps/meg.hpp"
#include "meta/communicator.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace gtw;

  // Two tangential dipoles, 64 radial magnetometers on a helmet.
  apps::MegConfig mcfg;
  mcfg.noise_sigma = 5e-15;
  apps::MegSimulator sim(mcfg);
  const apps::SimulatedDipole d1{{0.03, 0.02, 0.05}, {1e-8, 0, 0}, 11.0, 0.0};
  const apps::SimulatedDipole d2{{-0.03, -0.01, 0.06}, {0, 1e-8, 0}, 17.0, 1.0};
  const linalg::Matrix data = sim.simulate({d1, d2});
  std::printf("simulated %zu sensors x %zu samples, 2 hidden dipoles\n",
              data.rows(), data.cols());

  // Metacomputer: T3E + T90 (both in Jülich would be HiPPI-local; we use
  // T3E + SP2 to show the WAN cost).
  testbed::Testbed tb{testbed::TestbedOptions{}};
  meta::Metacomputer mc(tb.scheduler());
  meta::MachineSpec a;
  a.name = "T3E";
  a.max_pes = 512;
  a.frontend = &tb.t3e600();
  meta::MachineSpec b;
  b.name = "SP2";
  b.max_pes = 64;
  b.frontend = &tb.sp2();
  const int ma = mc.add_machine(a);
  const int mb = mc.add_machine(b);
  net::TcpConfig tcp;
  tcp.mss = tb.options().atm_mtu - units::Bytes{40};
  mc.link_machines(ma, mb, tcp, 7000);

  auto comm = std::make_shared<meta::Communicator>(
      mc, std::vector<meta::ProcLoc>{{ma, 0}, {ma, 1}, {mb, 0}, {mb, 1}});

  apps::MusicConfig cfg;
  cfg.grid_n = 10;
  apps::DistributedMusic dist(comm, apps::MusicScanner(sim.sensors()), cfg);
  dist.start(data);
  tb.scheduler().run();

  const auto& res = dist.result();
  std::printf("\nlocalized %zu sources in %d allreduce rounds "
              "(%.2f ms of communication):\n", res.peaks.size(),
              res.allreduce_rounds, res.elapsed_s * 1e3);
  const apps::Vec3 truths[] = {d1.position, d2.position};
  for (const auto& p : res.peaks) {
    double best = 1e9;
    for (const auto& t : truths) {
      const double dx = p.position.x - t.x, dy = p.position.y - t.y,
                   dz = p.position.z - t.z;
      best = std::min(best, std::sqrt(dx * dx + dy * dy + dz * dz));
    }
    std::printf("  peak at (%+.3f, %+.3f, %+.3f) m, MUSIC value %.1f, "
                "error to nearest true dipole %.1f mm\n", p.position.x,
                p.position.y, p.position.z, p.value, best * 1e3);
  }
  return 0;
}
