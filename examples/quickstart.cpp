// Quickstart: build the Gigabit Testbed West, run one TCP bulk transfer
// from the Cray T3E in Jülich to the IBM SP2 in Sankt Augustin, and print
// what the testbed saw.  This touches the three core public APIs: the
// testbed builder, the TCP transport, and the simulation scheduler.
//
//   $ ./quickstart
#include <cstdio>

#include "net/tcp.hpp"
#include "net/units.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace gtw;

  // 1. Assemble the June-1999 testbed (Figure 1 of the paper): OC-48 WAN,
  //    HiPPI complexes, ATM attachments, IP gateways.
  testbed::Testbed tb{testbed::TestbedOptions{}};
  std::printf("testbed up: %zu hosts, WAN %.2f Gbit/s over %.0f km\n",
              tb.hosts().size(), tb.wan_rate().gbps(),
              tb.options().distance_km);

  // 2. Transfer 64 MB from the T3E to the SP2 with 64 KB MTU and 1 MB
  //    socket buffers.
  net::TcpConfig cfg;
  cfg.mss = tb.options().atm_mtu -
            units::Bytes{net::kIpHeaderBytes + net::kTcpHeaderBytes};
  cfg.recv_buffer = units::Bytes{1u << 20};
  const auto res = net::run_bulk_transfer(tb.scheduler(), tb.t3e600(),
                                          tb.sp2(), units::Bytes{64u << 20}, cfg);

  // 3. Report.
  std::printf("transferred 64 MB in %s -> %.1f Mbit/s "
              "(paper measured ~260 Mbit/s, SP2 I/O bound)\n",
              res.duration.to_string().c_str(), res.goodput.mbps());
  std::printf("sender: %llu segments, %llu retransmits, srtt %.2f ms\n",
              static_cast<unsigned long long>(res.sender_stats.segments_sent),
              static_cast<unsigned long long>(res.sender_stats.retransmits),
              res.sender_stats.srtt_ms);
  std::printf("path: %llu packets forwarded by gw_o200, %llu by gw_e5000\n",
              static_cast<unsigned long long>(tb.gw_o200().packets_forwarded()),
              static_cast<unsigned long long>(
                  tb.gw_e5000().packets_forwarded()));
  return 0;
}
