// The dataflow engine on its own: a three-stage acquire->compute->display
// pipeline run in both of the paper's orchestration modes, with the
// per-stage metrics report and the VAMPIR-style Gantt that every
// flow::StageGraph provides for free.
#include <cstdio>
#include <string>

#include "des/scheduler.hpp"
#include "flow/graph.hpp"
#include "flow/stage.hpp"
#include "trace/trace.hpp"

using namespace gtw;

namespace {

void run_mode(const char* label, flow::GraphConfig cfg) {
  des::Scheduler sched;
  flow::StageGraph g(sched, cfg);
  g.add_stage(flow::compute_stage("transfer", [](const flow::Item&) {
    return des::SimTime::seconds(0.5);
  }, 1));
  g.add_stage(flow::compute_stage("compute", [](const flow::Item&) {
    return des::SimTime::seconds(1.1);
  }, 1));
  g.add_stage(flow::delay_stage("display", des::SimTime::seconds(0.6)));

  trace::TraceRecorder rec(g.stage_count());
  g.attach_trace(&rec);

  des::SimTime last = des::SimTime::zero(), period = des::SimTime::zero();
  g.on_complete([&](const flow::Item&) {
    period = sched.now() - last;
    last = sched.now();
  });
  // A scanner-like source: one item per 1.2 s repetition time.
  flow::PeriodicSource scans(g, {des::SimTime::seconds(1.2), 10});
  scans.start();
  sched.run();

  std::printf("== %s ==\n", label);
  std::printf("%s", g.metrics().report().c_str());
  std::printf("steady-state period %.2f s\n", period.sec());
  trace::TraceStats stats(rec);
  std::printf("%s\n", stats.gantt(64).c_str());
}

}  // namespace

int main() {
  // Sequential request/reply (the paper's FIRE client): one item in
  // flight, a newer scan supersedes anything still waiting.
  run_mode("sequential (max_in_flight=1, drop-stale admission)",
           {1, flow::QueuePolicy::kDropStale});
  // Pipelined: stages overlap, the 1.1 s compute stage sets the pace.
  run_mode("pipelined (free admission)", {});
  return 0;
}
