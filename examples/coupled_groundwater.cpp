// Coupled-fields metacomputing: the TRACE (flow, on the SP2) / PARTRACE
// (particles, on the T3E) pairing from section 3 of the paper, run over the
// meta communication library across the simulated testbed, with a
// VAMPIR-style trace of the exchange recorded and rendered.
//
//   $ ./coupled_groundwater
#include <cstdio>
#include <memory>

#include "apps/groundwater.hpp"
#include "meta/communicator.hpp"
#include "testbed/testbed.hpp"
#include "trace/trace.hpp"

int main() {
  using namespace gtw;

  testbed::Testbed tb{testbed::TestbedOptions{}};
  meta::Metacomputer mc(tb.scheduler());

  meta::MachineSpec sp2spec;
  sp2spec.name = "SP2";
  sp2spec.max_pes = 64;
  sp2spec.frontend = &tb.sp2();
  meta::MachineSpec t3espec;
  t3espec.name = "T3E";
  t3espec.max_pes = 512;
  t3espec.frontend = &tb.t3e600();
  const int m_sp2 = mc.add_machine(sp2spec);
  const int m_t3e = mc.add_machine(t3espec);

  net::TcpConfig tcp;
  tcp.mss = tb.options().atm_mtu - units::Bytes{40};
  tcp.recv_buffer = units::Bytes{1u << 20};
  mc.link_machines(m_sp2, m_t3e, tcp, 7000);

  auto comm = std::make_shared<meta::Communicator>(
      mc, std::vector<meta::ProcLoc>{{m_sp2, 0}, {m_t3e, 0}});

  // Trace the run like VAMPIR would.
  trace::TraceRecorder rec(2);
  const auto st_flow = rec.define_state("flow");
  const auto st_advect = rec.define_state("advect");

  apps::TraceConfig cfg;
  cfg.dims = {64, 64, 16};  // 64x64x16 x 3 components x f32 = 3.1 MB/step
  std::printf("solving Darcy flow on a %dx%dx%d grid (SP2) and advecting "
              "400 particles (T3E), coupled every step...\n", cfg.dims.nx,
              cfg.dims.ny, cfg.dims.nz);

  apps::GroundwaterCoupling run(comm, cfg, /*particles=*/400, /*steps=*/15);
  run.set_trace(&rec, st_flow, st_advect);
  run.start();
  tb.scheduler().run();

  const apps::CouplingResult& res = run.result();
  std::printf("completed %d coupling steps, %.2f MB per field transfer\n",
              res.steps_completed,
              static_cast<double>(res.bytes_per_step) / 1e6);
  std::printf("field transfer burst rate: %.1f MByte/s (paper requirement: "
              "up to 30 MByte/s; the SP2 I/O limit is ~32 MByte/s)\n",
              res.burst_mbyte_per_s);
  std::printf("sustained incl. compute: %.1f MByte/s\n",
              res.achieved_mbyte_per_s);
  std::printf("particles still in the domain: %d / 400\n",
              res.particles_remaining);

  trace::TraceStats stats(rec);
  std::printf("\nVAMPIR-style summary:\n%s", stats.profile().c_str());
  std::printf("\ntimeline (f = flow solve, a = advect):\n%s",
              stats.gantt(64).c_str());
  return 0;
}
