// Section-5 extension scenario: a Nagel-Schreckenberg motorway simulation
// at the DLR streams live occupancy frames over the dark fibre to a
// visualization host in Cologne, while the fundamental diagram is computed
// locally — the "distributed traffic simulation and visualization" project.
//
//   $ ./traffic_visualization
#include <cstdio>

#include "apps/traffic.hpp"
#include "testbed/extensions.hpp"

int main() {
  using namespace gtw;

  // The physics first: flow vs density (fundamental diagram).
  std::printf("Nagel-Schreckenberg fundamental diagram (1000 cells, "
              "v_max=5, p=0.25):\n density  flow\n");
  for (double rho : {0.05, 0.10, 0.15, 0.25, 0.40, 0.60}) {
    const double f = apps::nasch_flow(rho);
    std::printf("  %4.2f   %5.3f |", rho, f);
    const int bar = static_cast<int>(f * 80);
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }

  // A jam forming: space-time plot of a dense road.
  std::printf("\nspace-time plot (x = road cell, downward = time, '|' = "
              "car):\n");
  apps::NaschConfig jam;
  jam.cells = 76;
  jam.density = 0.35;
  jam.seed = 3;
  apps::NaschRoad road(jam);
  for (int t = 0; t < 20; ++t) {
    const auto occ = road.occupancy();
    for (auto c : occ) std::putchar(c ? '|' : ' ');
    std::putchar('\n');
    road.step();
  }

  // The distributed part: simulate at the DLR, watch in Cologne.
  testbed::ExtendedTestbed tb;
  apps::NaschConfig big;
  big.cells = 100000;
  apps::DistributedTrafficViz run(tb.dlr_traffic(), tb.cologne_viz(), big,
                                  /*steps=*/60);
  run.start();
  tb.scheduler().run();
  const auto& res = run.result();
  std::printf("\nstreamed %llu occupancy frames (%.0f KB each) from DLR to "
              "Cologne at %.1f frames/s over the dark fibre\n",
              static_cast<unsigned long long>(res.frames_delivered),
              static_cast<double>(res.frame_bytes) / 1e3, res.frames_per_s);
  std::printf("final mean speed on the network: %.2f cells/step\n",
              res.final_mean_speed);
  return 0;
}
