// MetaCISPAR scenario: an industrial fluid code and a structural code,
// discretised independently, coupled through the COCOLIB-style interface
// across the testbed — the fluid (channel flow) on the T3E, the structure
// (elastic wall) on the SP2, iterating until the shared surface is
// consistent.
//
//   $ ./fsi_cocolib
#include <algorithm>
#include <cstdio>
#include <memory>

#include "apps/cocolib.hpp"
#include "meta/communicator.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace gtw;
  using namespace gtw::apps::coco;

  testbed::Testbed tb{testbed::TestbedOptions{}};
  meta::Metacomputer mc(tb.scheduler());
  meta::MachineSpec f;
  f.name = "T3E (fluid)";
  f.max_pes = 512;
  f.frontend = &tb.t3e600();
  meta::MachineSpec s;
  s.name = "SP2 (structure)";
  s.max_pes = 64;
  s.frontend = &tb.sp2();
  const int mf = mc.add_machine(f);
  const int ms = mc.add_machine(s);
  net::TcpConfig tcp;
  tcp.mss = tb.options().atm_mtu - units::Bytes{40};
  mc.link_machines(mf, ms, tcp, 7000);
  auto comm = std::make_shared<meta::Communicator>(
      mc, std::vector<meta::ProcLoc>{{mf, 0}, {ms, 0}});

  const InterfaceMesh fluid_mesh = InterfaceMesh::uniform(129);
  const InterfaceMesh wall_mesh = InterfaceMesh::uniform(97);
  std::printf("coupling a %zu-node fluid interface to a %zu-node structural "
              "interface (non-matching meshes)...\n", fluid_mesh.size(),
              wall_mesh.size());

  DistributedFsi fsi(comm, fluid_mesh, wall_mesh, FsiConfig{});
  fsi.start();
  tb.scheduler().run();

  const FsiResult& r = fsi.result();
  std::printf("%s after %d interface iterations (residual %.2e)\n",
              r.converged ? "converged" : "did not converge", r.iterations,
              r.residual);
  std::printf("%.1f KB of interface data crossed the WAN in %.1f ms\n",
              static_cast<double>(r.bytes_exchanged) / 1e3,
              r.elapsed_s * 1e3);

  // The deformed wall and the pressure that shaped it.
  const double peak_w =
      *std::max_element(r.deflection.begin(), r.deflection.end());
  std::printf("\nwall deflection (peak %.4f):\n", peak_w);
  for (int row = 4; row >= 0; --row) {
    for (std::size_t i = 0; i < r.deflection.size(); i += 2)
      std::putchar(r.deflection[i] >= peak_w * (row + 0.5) / 5.0 ? '#' : ' ');
    std::putchar('\n');
  }
  std::printf("pressure drop along the channel: %.2f -> %.2f\n",
              r.pressure.front(), r.pressure.back());
  std::printf("volume flux vs rigid channel: %.3f vs %.3f (the inflated "
              "wall carries more flow)\n", r.flux,
              ChannelFlow(fluid_mesh, FsiConfig{}.channel)
                  .flux(std::vector<double>(fluid_mesh.size(), 1.0)));
  return 0;
}
