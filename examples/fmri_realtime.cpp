// The paper's flagship scenario end to end: a synthetic MRI scanner streams
// brain volumes through the RT-server to the simulated Cray T3E, the FIRE
// analysis chain (median filter, motion correction, detrending, incremental
// correlation) runs on real data, results return to the RT-client, and the
// functional map is merged onto a high-resolution anatomical head for the
// Onyx-2 / Responsive Workbench leg.
//
//   $ ./fmri_realtime
#include <cstdio>

#include "fire/pipeline.hpp"
#include "scanner/phantom.hpp"
#include "testbed/testbed.hpp"
#include "viz/merge.hpp"
#include "viz/workbench.hpp"

int main() {
  using namespace gtw;

  testbed::Testbed tb{testbed::TestbedOptions{}};

  // Synthetic subject: activation blob in the left motor cortex area, mild
  // head motion, realistic noise and drift.
  scanner::FmriConfig scfg;
  scfg.dims = {32, 32, 8};
  scfg.regions = {{9, 20, 4, 3.0, 0.05}};
  scfg.noise_sigma = 2.0;
  scfg.motion.jitter = 0.1;
  scfg.expected_scans = 16;
  scanner::FmriSeriesGenerator gen(scfg);

  fire::AnalysisConfig acfg;
  acfg.stimulus = scfg.stimulus;
  acfg.hrf = scfg.hrf;
  acfg.tr_s = scfg.tr_s;
  acfg.detrend_cfg.expected_scans = scfg.expected_scans;
  fire::AnalysisEngine engine(scfg.dims, acfg);

  fire::PipelineConfig pcfg;
  pcfg.n_scans = 16;
  pcfg.t3e_pes = 256;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, pcfg,
      [&gen](int t) { return gen.acquire(t); }, &engine);

  std::printf("scanning 16 volumes at TR = %.0f s, processing on %d T3E "
              "PEs...\n", pcfg.tr_s, pcfg.t3e_pes);
  pipe.start();
  tb.scheduler().run();

  const fire::PipelineResult res = pipe.result();
  std::printf("mean acquisition->display delay: %.2f s (paper: < 5 s)\n",
              res.mean_total_delay_s);
  std::printf("sustained display period: %.2f s; scans skipped: %d\n",
              res.sustained_period_s, res.scans_skipped);

  // Detected activation vs ground truth.
  const fire::VolumeF map = engine.correlation_map();
  const auto mask = gen.activation_mask();
  double active = 0, quiet = 0;
  int na = 0, nq = 0;
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (mask[i]) {
      active += map[i];
      ++na;
    } else if (gen.baseline()[i] > 100.0f) {
      quiet += std::abs(map[i]);
      ++nq;
    }
  }
  std::printf("correlation: %.2f mean in the driven region (%d voxels) vs "
              "%.2f in quiet tissue\n", active / na, na, quiet / nq);
  std::printf("last motion estimate: tx=%.2f ty=%.2f voxels\n",
              engine.last_motion().tx, engine.last_motion().ty);

  // Onyx-2 leg: merge onto the anatomical head and check the workbench
  // streaming budget.
  const fire::VolumeF anat = scanner::make_anatomical({256, 256, 128});
  const viz::MergeResult merged = viz::merge_functional(anat, map, 0.4f);
  std::printf("3-D merge: %zu anatomical voxels flagged (peak r = %.2f)\n",
              merged.activated_voxels, merged.peak_correlation);
  viz::WorkbenchFormat fmt;
  std::printf("workbench: %.1f MB/frame -> %.2f frames/s over 622 Mbit/s "
              "classical IP (paper: < 8)\n",
              static_cast<double>(fmt.frame_bytes().count()) / 1e6,
              viz::classical_ip_fps(fmt, net::kOc12Line));
  return 0;
}
